"""Tests for dependence paths, frames, and sparse candidate collection."""

from repro.checkers import NullDereferenceChecker, cwe23_checker
from repro.lang import compile_source
from repro.pdg import EdgeKind, build_pdg
from repro.sparse import (DependencePath, FrameTable, PathStep, SparseConfig,
                          collect_candidates, extend_path)


def pdg_of(src):
    return build_pdg(compile_source(src))


class TestFrameTable:
    def test_root_interned(self):
        frames = FrameTable()
        assert frames.root("f") is frames.root("f")

    def test_call_frames_distinct_per_site(self):
        frames = FrameTable()
        root = frames.root("f")
        a = frames.enter_call(root, 1, "g")
        b = frames.enter_call(root, 2, "g")
        assert a is not b
        assert frames.enter_call(root, 1, "g") is a

    def test_escape_frames_interned(self):
        frames = FrameTable()
        root = frames.root("g")
        caller = frames.escape_return(root, 3, "f")
        assert frames.escape_return(root, 3, "f") is caller
        assert caller.via_return


class TestExtendPath:
    SRC = """
    fun id(v) { return v; }
    fun f(a) {
      x = id(a);
      y = id(x);
      return y;
    }
    """

    def test_balanced_call_return(self):
        pdg = pdg_of(self.SRC)
        frames = FrameTable()
        a_def = pdg.def_of("f", "a")
        path = DependencePath([PathStep(a_def, frames.root("f"))])
        call_edge = next(e for e in pdg.data_succs(a_def)
                         if e.kind is EdgeKind.CALL)
        path = extend_path(path, call_edge, frames)
        assert path.steps[-1].frame.function == "id"
        # Walk to the return statement of id.
        v = path.steps[-1].vertex
        while True:
            nxt = [e for e in pdg.data_succs(v) if e.kind is EdgeKind.LOCAL]
            if not nxt:
                break
            path = extend_path(path, nxt[0], frames)
            v = path.steps[-1].vertex
        # Exit through the matching return edge only.
        ret_edges = [e for e in pdg.data_succs(v)
                     if e.kind is EdgeKind.RETURN]
        matching = [e for e in ret_edges
                    if extend_path(path, e, frames) is not None]
        assert len(matching) == 1
        extended = extend_path(path, matching[0], frames)
        assert extended.steps[-1].frame.function == "f"
        assert extended.steps[-1].frame is path.steps[0].frame

    def test_mismatched_return_rejected(self):
        pdg = pdg_of(self.SRC)
        frames = FrameTable()
        a_def = pdg.def_of("f", "a")
        path = DependencePath([PathStep(a_def, frames.root("f"))])
        call_edges = [e for e in pdg.data_succs(a_def)
                      if e.kind is EdgeKind.CALL]
        path = extend_path(path, call_edges[0], frames)
        ret = pdg.return_vertex("id")
        wrong = [e for e in pdg.data_succs(ret)
                 if e.kind is EdgeKind.RETURN
                 and e.callsite != call_edges[0].callsite]
        # Reach the return vertex first.
        v = path.steps[-1].vertex
        while v is not ret:
            nxt = [e for e in pdg.data_succs(v) if e.kind is EdgeKind.LOCAL]
            path = extend_path(path, nxt[0], frames)
            v = path.steps[-1].vertex
        for edge in wrong:
            assert extend_path(path, edge, frames) is None

    def test_unbalanced_escape_into_caller(self):
        pdg = pdg_of("""
        fun source() {
          p = null;
          return p;
        }
        fun f() {
          q = source();
          return q;
        }
        """)
        frames = FrameTable()
        p_def = pdg.def_of("source", "p")
        path = DependencePath([PathStep(p_def, frames.root("source"))])
        ret = pdg.return_vertex("source")
        local = next(e for e in pdg.data_succs(p_def))
        path = extend_path(path, local, frames)
        # %rv -> return
        while path.steps[-1].vertex is not ret:
            edge = next(e for e in pdg.data_succs(path.steps[-1].vertex)
                        if e.kind is EdgeKind.LOCAL)
            path = extend_path(path, edge, frames)
        escape = next(e for e in pdg.data_succs(ret)
                      if e.kind is EdgeKind.RETURN)
        escaped = extend_path(path, escape, frames)
        assert escaped.steps[-1].frame.function == "f"
        assert escaped.steps[-1].frame.via_return

    def test_frames_collects_parents(self):
        pdg = pdg_of(self.SRC)
        frames = FrameTable()
        a_def = pdg.def_of("f", "a")
        path = DependencePath([PathStep(a_def, frames.root("f"))])
        call_edge = next(e for e in pdg.data_succs(a_def)
                         if e.kind is EdgeKind.CALL)
        path = extend_path(path, call_edge, frames)
        fids = {f.function for f in path.frames()}
        assert fids == {"f", "id"}


class TestCollectCandidates:
    def test_finds_simple_null_flow(self):
        pdg = pdg_of("""
        fun f() {
          p = null;
          deref(p);
          return 0;
        }
        """)
        candidates = collect_candidates(pdg, NullDereferenceChecker())
        assert len(candidates) == 1
        assert candidates[0].source.var.name == "p"

    def test_null_killed_by_arithmetic(self):
        pdg = pdg_of("""
        fun f() {
          p = null;
          q = p + 1;
          deref(q);
          return 0;
        }
        """)
        assert collect_candidates(pdg, NullDereferenceChecker()) == []

    def test_interprocedural_flow_through_return(self):
        pdg = pdg_of("""
        fun make() {
          p = null;
          return p;
        }
        fun f() {
          q = make();
          deref(q);
          return 0;
        }
        """)
        candidates = collect_candidates(pdg, NullDereferenceChecker())
        assert len(candidates) == 1
        functions = {s.vertex.function for s in candidates[0].path.steps}
        assert functions == {"make", "f"}

    def test_flow_through_parameter(self):
        pdg = pdg_of("""
        fun use(p) {
          deref(p);
          return 0;
        }
        fun f() {
          q = null;
          r = use(q);
          return r;
        }
        """)
        candidates = collect_candidates(pdg, NullDereferenceChecker())
        assert len(candidates) == 1

    def test_taint_flows_through_arithmetic(self):
        pdg = pdg_of("""
        fun f() {
          t = gets();
          u = t + 1;
          fopen(u);
          return 0;
        }
        """)
        assert len(collect_candidates(pdg, cwe23_checker())) == 1

    def test_taint_stopped_by_sanitizer(self):
        pdg = pdg_of("""
        fun f() {
          t = gets();
          u = sanitize_path(t);
          fopen(u);
          return 0;
        }
        """)
        assert collect_candidates(pdg, cwe23_checker()) == []

    def test_paths_per_pair_cap(self):
        pdg = pdg_of("""
        fun f(a) {
          p = null;
          if (a < 1) { q = p; } else { q = p; }
          deref(q);
          return 0;
        }
        """)
        config = SparseConfig(max_paths_per_pair=1)
        candidates = collect_candidates(pdg, NullDereferenceChecker(),
                                        config)
        assert len(candidates) == 1

    def test_null_does_not_flow_through_condition(self):
        pdg = pdg_of("""
        fun f(a) {
          p = null;
          if (p == a) { b = 1; } else { b = 2; }
          deref(b);
          return 0;
        }
        """)
        assert collect_candidates(pdg, NullDereferenceChecker()) == []
