"""Differential suite: sparsified analysis is byte-identical to the
full-graph pipeline.

The sparsification contract (`repro.pdg.reduce`, docs/sparsification.md)
is that per-checker pruned views change *nothing* the program can see:
candidates, triage decisions, verdicts, witnesses, and the rendered
findings payload are equal to the full walk, bit for bit.  These tests
pin that across 25 fuzzed programs for both path-sensitive engines,
sequential and pooled (thread and process backends), with and without
the absint triage pre-pass.
"""

import json

import pytest

from repro.baselines import PinpointConfig, PinpointEngine
from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.engine import findings_payload
from repro.exec import ExecConfig
from repro.fusion import (FusionConfig, FusionEngine, GraphSolverConfig,
                          prepare_pdg)

FUZZ_SEEDS = list(range(25))

#: Seeds with interesting shapes for the (slower) process/Pinpoint
#: passes — same convention as tests/test_parallel_driver.py.
SMALL_SEEDS = [0, 7, 17, 23]


def fuzz_pdg(seed: int):
    spec = SubjectSpec("fuzz-sparsify", seed=seed, num_functions=6,
                       layers=3, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1),
                       taint23_bugs=(1, 0, 1))
    return prepare_pdg(generate_subject(spec).program)


def fusion(pdg, sparsify: bool) -> FusionEngine:
    return FusionEngine(pdg, FusionConfig(
        solver=GraphSolverConfig(want_model=True), sparsify=sparsify))


def pinpoint(pdg, sparsify: bool) -> PinpointEngine:
    return PinpointEngine(pdg, PinpointConfig(sparsify=sparsify))


def rendered(result) -> str:
    """The serve/CLI byte-identity currency: the findings payload."""
    return json.dumps(findings_payload(result), sort_keys=True)


def canonical(result):
    return [(report.checker,
             tuple((step.vertex.index, step.frame.fid)
                   for step in report.candidate.path.steps),
             report.feasible,
             report.decided_in_preprocess,
             tuple(sorted(report.witness.items())))
            for report in result.reports]


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fusion_sparsified_matches_full(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    full = fusion(pdg, sparsify=False).analyze(checker)
    assert full.candidates > 0, "fuzz spec generated no candidates"
    sparse = fusion(pdg, sparsify=True).analyze(checker)
    assert rendered(sparse) == rendered(full)
    assert canonical(sparse) == canonical(full)
    assert sparse.candidates == full.candidates
    assert sparse.smt_queries == full.smt_queries


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fusion_sparsified_matches_full_with_triage(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    full = fusion(pdg, sparsify=False).analyze(checker, triage=True)
    sparse = fusion(pdg, sparsify=True).analyze(checker, triage=True)
    assert rendered(sparse) == rendered(full)
    assert sparse.triage_decided == full.triage_decided
    assert sparse.smt_queries == full.smt_queries


@pytest.mark.parametrize("seed", SMALL_SEEDS)
def test_pinpoint_sparsified_matches_full(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    full = pinpoint(pdg, sparsify=False).analyze(checker)
    sparse = pinpoint(pdg, sparsify=True).analyze(checker)
    assert rendered(sparse) == rendered(full)
    assert canonical(sparse) == canonical(full)


@pytest.mark.parametrize("seed", SMALL_SEEDS)
def test_pinpoint_sparsified_matches_full_with_triage(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    full = pinpoint(pdg, sparsify=False).analyze(checker, triage=True)
    sparse = pinpoint(pdg, sparsify=True).analyze(checker, triage=True)
    assert rendered(sparse) == rendered(full)
    assert sparse.triage_decided == full.triage_decided


@pytest.mark.parametrize("checker_name", ["cwe-23", "cwe-402",
                                          "div-zero"])
def test_every_checker_sparsifies_identically(checker_name):
    from repro.engine import CHECKER_FACTORIES

    for seed in SMALL_SEEDS:
        pdg = fuzz_pdg(seed)
        checker_factory = CHECKER_FACTORIES[checker_name]
        full = fusion(pdg, sparsify=False).analyze(checker_factory())
        sparse = fusion(pdg, sparsify=True).analyze(checker_factory())
        assert rendered(sparse) == rendered(full), (checker_name, seed)


@pytest.mark.parametrize("seed", SMALL_SEEDS)
@pytest.mark.parametrize("jobs,backend", [(4, "thread"), (4, "process")])
def test_fusion_pooled_sparsified_matches_full(seed, jobs, backend):
    """jobs=4 on both pool flavors: thread workers share the parent's
    candidate list; process workers rebuild the pruned view from the
    pickled PDG — both must render the full pipeline's bytes."""
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    full = fusion(pdg, sparsify=False).analyze(checker)
    pooled = fusion(pdg, sparsify=True).analyze(
        checker, exec_config=ExecConfig(jobs=jobs, backend=backend))
    assert rendered(pooled) == rendered(full)
    assert canonical(pooled) == canonical(full)


@pytest.mark.parametrize("seed", SMALL_SEEDS[:2])
def test_pinpoint_pooled_sparsified_matches_full(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    full = pinpoint(pdg, sparsify=False).analyze(checker)
    for backend in ("thread", "process"):
        pooled = pinpoint(pdg, sparsify=True).analyze(
            checker, exec_config=ExecConfig(jobs=4, backend=backend))
        assert rendered(pooled) == rendered(full), backend


@pytest.mark.parametrize("seed", SMALL_SEEDS[:2])
def test_jobs1_exec_path_sparsified_matches_full(seed):
    """jobs=1 through the exec layer (not the seed loop) with views on."""
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    full = fusion(pdg, sparsify=False).analyze(checker)
    routed = fusion(pdg, sparsify=True).analyze(
        checker, exec_config=ExecConfig(jobs=1))
    assert rendered(routed) == rendered(full)
