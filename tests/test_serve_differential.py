"""Differential suite: daemon responses == one-shot ``repro analyze``.

For a 25-seed corpus of generated programs, the daemon must be
*invisible* as an execution vehicle:

* a cold daemon request returns findings byte-identical to a one-shot
  ``repro analyze --json`` run on the same source;
* after an LSP-style edit, the warm daemon (hot engine discarded and
  rebuilt, unchanged verdicts replayed from the tenant's store) returns
  findings byte-identical to a from-scratch CLI run on the mutated
  source;
* re-analysing an unchanged program dispatches **zero** SMT queries —
  every verdict is replayed — and still returns the identical bytes.

Byte-identical means ``json.dumps`` equality of the findings list: same
reports, same order, same witnesses, same key order.
"""

import asyncio
import contextlib
import io
import json
import re
import tempfile

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.cli import main
from repro.serve import ServeApp, ServeConfig

SEEDS = list(range(25))


def fuzz_source(seed: int) -> str:
    spec = SubjectSpec("serve-diff", seed=seed, num_functions=5,
                       layers=2, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    return generate_subject(spec).source


def body_edit(source: str) -> str:
    """Insert an unused statement at the top of the first function —
    content changes, interface does not (same mutator as the store
    differential suite)."""
    match = re.search(r"fun (\w+)\([^)]*\) \{\n", source)
    assert match is not None
    return (source[:match.end()] + "  zq_edit = 7;\n"
            + source[match.end():])


def cli_findings(tmp_path, source: str) -> str:
    """One-shot ``repro analyze --json`` findings, as canonical bytes."""
    path = tmp_path / "prog.fl"
    path.write_text(source)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        main(["analyze", "--subject", str(path), "--checker",
              "null-deref", "--json"])
    payload = json.loads(buffer.getvalue())
    return json.dumps(payload["findings"])


def daemon_bytes(response: dict) -> str:
    assert "result" in response, response.get("error")
    return json.dumps(response["result"]["findings"])


@pytest.mark.parametrize("seed", SEEDS)
def test_daemon_matches_one_shot_cli(seed, tmp_path):
    source = fuzz_source(seed)
    mutated = body_edit(source)
    cold_expected = cli_findings(tmp_path, source)
    warm_expected = cli_findings(tmp_path, mutated)

    async def run_daemon():
        with tempfile.TemporaryDirectory() as root:
            app = ServeApp(ServeConfig(cache_root=root))
            try:
                def rpc(method, **params):
                    return app.handle({"jsonrpc": "2.0", "id": 1,
                                       "method": method,
                                       "params": params})
                init = await rpc("initialize", tenant="diff",
                                 source=source)
                assert "result" in init, init.get("error")

                cold = await rpc("analyze", tenant="diff")
                assert daemon_bytes(cold) == cold_expected
                cold_counters = cold["result"]["counters"]
                assert cold_counters["replayed_verdicts"] == 0

                # Unchanged program, warm store: zero SMT queries, every
                # verdict replayed, identical bytes.
                warm_same = await rpc("analyze", tenant="diff")
                counters = warm_same["result"]["counters"]
                assert counters["smt_queries"] == 0
                assert counters["replayed_verdicts"] == \
                    counters["candidates"]
                assert daemon_bytes(warm_same) == cold_expected

                # After the edit the warm daemon must agree with a
                # from-scratch run on the mutated program.
                update = await rpc("update", tenant="diff",
                                   source=mutated)
                assert update["result"]["generation"] == 2
                warm = await rpc("analyze", tenant="diff")
                assert daemon_bytes(warm) == warm_expected
                # A body edit that keeps the interface re-decides at
                # most the edited function's verdicts.
                warm_counters = warm["result"]["counters"]
                assert warm_counters["smt_queries"] <= \
                    warm_counters["candidates"]
            finally:
                app.close()

    asyncio.run(run_daemon())


def test_delta_response_reports_only_redecided_verdicts(tmp_path):
    """The LSP shape: after an edit, ``delta: true`` returns only the
    verdicts that were actually re-decided."""
    source = fuzz_source(7)
    mutated = body_edit(source)

    async def run_daemon():
        with tempfile.TemporaryDirectory() as root:
            app = ServeApp(ServeConfig(cache_root=root))
            try:
                def rpc(method, **params):
                    return app.handle({"jsonrpc": "2.0", "id": 1,
                                       "method": method,
                                       "params": params})
                await rpc("initialize", tenant="t", source=source)
                full = await rpc("analyze", tenant="t")
                await rpc("update", tenant="t", source=mutated)
                delta = await rpc("analyze", tenant="t", delta=True)
                counters = delta["result"]["counters"]
                assert delta["result"]["delta"] is True
                assert len(delta["result"]["findings"]) == \
                    counters["candidates"] - counters["replayed_verdicts"]
                assert len(delta["result"]["findings"]) <= \
                    len(full["result"]["findings"])
            finally:
                app.close()

    asyncio.run(run_daemon())
