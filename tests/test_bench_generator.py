"""Tests for the synthetic subject generator and ground truth."""

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import (NullDereferenceChecker, cwe23_checker,
                            cwe402_checker)
from repro.fusion import FusionEngine, prepare_pdg
from repro.lang.ir import Call


def spec(**overrides):
    base = dict(name="t", seed=99, num_functions=14, layers=3, avg_stmts=8,
                call_fanout=2, null_bugs=(2, 1, 1),
                taint23_bugs=(1, 0, 1), taint402_bugs=(1, 1, 0))
    base.update(overrides)
    return SubjectSpec(**base)


class TestDeterminism:
    def test_same_seed_same_source(self):
        a = generate_subject(spec())
        b = generate_subject(spec())
        assert a.source == b.source
        assert a.ground_truth == b.ground_truth

    def test_different_seed_different_source(self):
        a = generate_subject(spec(seed=1))
        b = generate_subject(spec(seed=2))
        assert a.source != b.source


class TestStructure:
    def test_program_compiles_and_validates(self):
        subject = generate_subject(spec())
        subject.program.validate()

    def test_layered_calls_are_acyclic(self):
        from repro.pdg import CallGraph

        subject = generate_subject(spec())
        assert not CallGraph(subject.program).recursive_functions()

    def test_fanout_respected(self):
        subject = generate_subject(spec(call_fanout=3))
        program = subject.program
        # Every non-leaf generated function calls exactly fanout defined
        # functions (the chained-call construction).
        for name, fn in program.functions.items():
            if not name.startswith("fn_l") or name.startswith("fn_l2"):
                continue
            calls = [s for s in fn.statements() if isinstance(s, Call)
                     and s.callee in program.functions]
            assert len(calls) == 3, name

    def test_loc_scales_with_functions(self):
        small = generate_subject(spec(num_functions=8))
        large = generate_subject(spec(num_functions=40))
        assert large.loc > small.loc * 2


class TestGroundTruth:
    def test_counts_match_plan(self):
        subject = generate_subject(spec())
        null_truth = subject.truth_for("null-deref")
        assert len(null_truth) == 4
        assert sum(1 for b in null_truth if b.real) == 2
        assert sum(1 for b in null_truth if not b.path_feasible) == 1
        assert len(subject.truth_for("cwe-23")) == 2
        assert len(subject.truth_for("cwe-402")) == 2

    def test_keys_are_unique(self):
        subject = generate_subject(spec())
        keys = [b.key for b in subject.ground_truth]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("checker_factory,name", [
        (NullDereferenceChecker, "null-deref"),
        (cwe23_checker, "cwe-23"),
        (cwe402_checker, "cwe-402"),
    ])
    def test_fusion_verdicts_match_labels(self, checker_factory, name):
        """The engine reports exactly the path-feasible injected bugs."""
        subject = generate_subject(spec(seed=123))
        pdg = prepare_pdg(subject.program)
        result = FusionEngine(pdg).analyze(checker_factory())
        reported = {r.source.function for r in result.bugs}
        expected = {b.source_function for b in subject.truth_for(name)
                    if b.path_feasible}
        assert reported == expected
