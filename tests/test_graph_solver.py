"""Focused tests for ir_based_smt_solve (Algorithms 4 and 6)."""

from repro.checkers import NullDereferenceChecker
from repro.fusion import (GraphSolverConfig, IrBasedSmtSolver,
                          prepare_pdg)
from repro.lang import compile_source
from repro.pdg import compute_slice
from repro.sparse import collect_candidates

FIGURE1 = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
"""

OPAQUE_CALLEE = """
fun mix(a, b) {
  m = a * b;
  return m;
}
fun f(k, n) {
  p = null;
  c = mix(k, n);
  if (c > 3) { deref(p); }
  return 0;
}
"""


def setup(src, **config_kwargs):
    pdg = prepare_pdg(compile_source(src))
    [candidate] = collect_candidates(pdg, NullDereferenceChecker())
    the_slice = compute_slice(pdg, [candidate.path])
    solver = IrBasedSmtSolver(pdg, config=GraphSolverConfig(**config_kwargs))
    return solver, candidate, the_slice


class TestOptimizedSolving:
    def test_figure1_solved_without_cloning(self):
        solver, candidate, the_slice = setup(FIGURE1)
        result = solver.solve([candidate.path], the_slice)
        assert result.is_sat
        # bar is affine: both call sites resolve through quick paths.
        assert solver.stats.quickpath_resolutions == 2
        assert solver.stats.clones == 0

    def test_figure1_decided_in_preprocessing(self):
        solver, candidate, the_slice = setup(FIGURE1)
        result = solver.solve([candidate.path], the_slice)
        # The Section 2 story: unconstrained propagation settles c < d
        # before any SAT search.
        assert result.decided_in_preprocess

    def test_opaque_callee_is_cloned(self):
        solver, candidate, the_slice = setup(OPAQUE_CALLEE)
        result = solver.solve([candidate.path], the_slice)
        assert result.is_sat
        assert solver.stats.clones == 1

    def test_templates_cached_across_queries(self):
        solver, candidate, the_slice = setup(FIGURE1)
        solver.solve([candidate.path], the_slice)
        nodes_after_first = solver.stats.template_nodes
        solver.solve([candidate.path], the_slice)
        assert solver.stats.template_nodes == nodes_after_first

    def test_quickpaths_disabled_forces_clones(self):
        solver, candidate, the_slice = setup(FIGURE1, use_quickpaths=False)
        result = solver.solve([candidate.path], the_slice)
        assert result.is_sat
        assert solver.stats.clones == 2


class TestUnoptimizedSolving:
    def test_algorithm4_agrees(self):
        opt_solver, candidate, the_slice = setup(FIGURE1)
        opt = opt_solver.solve([candidate.path], the_slice)
        raw_solver, candidate2, slice2 = setup(FIGURE1, optimized=False)
        raw = raw_solver.solve([candidate2.path], slice2)
        assert opt.status == raw.status

    def test_algorithm4_materialises_more(self):
        opt_solver, candidate, the_slice = setup(FIGURE1)
        opt_solver.solve([candidate.path], the_slice)
        raw_solver, candidate2, slice2 = setup(FIGURE1, optimized=False)
        raw_solver.solve([candidate2.path], slice2)
        assert raw_solver.stats.peak_condition_nodes >= \
            opt_solver.stats.peak_condition_nodes


class TestLocalPassSelection:
    def test_restricted_passes_still_correct(self):
        solver, candidate, the_slice = setup(FIGURE1,
                                             local_passes=("constants",))
        result = solver.solve([candidate.path], the_slice)
        assert result.is_sat

    def test_no_local_passes_still_correct(self):
        solver, candidate, the_slice = setup(FIGURE1, local_passes=())
        result = solver.solve([candidate.path], the_slice)
        assert result.is_sat


class TestEscapedFrames:
    SRC = """
    fun make() {
      p = null;
      return p;
    }
    fun level1(a) {
      q = make();
      return q;
    }
    fun top(a) {
      r = level1(a);
      if (a > 9) { deref(r); }
      return 0;
    }
    """

    def test_null_escaping_two_levels(self):
        pdg = prepare_pdg(compile_source(self.SRC))
        [candidate] = collect_candidates(pdg, NullDereferenceChecker())
        # The path climbs make -> level1 -> top: three frames.
        frames = candidate.path.frames()
        assert {f.function for f in frames} == {"make", "level1", "top"}
        the_slice = compute_slice(pdg, [candidate.path])
        solver = IrBasedSmtSolver(pdg)
        assert solver.solve([candidate.path], the_slice).is_sat

    def test_infeasible_guard_after_escape(self):
        src = self.SRC.replace("a > 9", "a != a")
        pdg = prepare_pdg(compile_source(src))
        [candidate] = collect_candidates(pdg, NullDereferenceChecker())
        the_slice = compute_slice(pdg, [candidate.path])
        solver = IrBasedSmtSolver(pdg)
        assert solver.solve([candidate.path], the_slice).is_unsat
