"""Unit and property tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import SatSolver, SatStatus, solve_clauses
from repro.smt.sat import luby


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {i + 1: bits[i] for i in range(num_vars)}
        if all(any(model[abs(lit)] == (lit > 0) for lit in clause)
               for clause in clauses):
            return True
    return False


def check_model(clauses, model):
    return all(any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
               for clause in clauses)


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert solve_clauses([]).status is SatStatus.SAT

    def test_single_unit(self):
        result = solve_clauses([[1]])
        assert result.is_sat and result.model[1] is True

    def test_conflicting_units(self):
        assert solve_clauses([[1], [-1]]).status is SatStatus.UNSAT

    def test_empty_clause_is_unsat(self):
        assert solve_clauses([[1, 2], []]).status is SatStatus.UNSAT

    def test_tautological_clause_ignored(self):
        result = solve_clauses([[1, -1], [2]])
        assert result.is_sat and result.model[2] is True

    def test_duplicate_literals_deduped(self):
        assert solve_clauses([[1, 1, 1]]).is_sat

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_implication_chain(self):
        # 1 -> 2 -> 3 -> 4, with 1 forced true and 4 forced false: unsat.
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4], [-4]]
        assert solve_clauses(clauses).status is SatStatus.UNSAT

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        result = solve_clauses(clauses)
        assert result.is_sat
        assert check_model(clauses, result.model)


class TestPigeonhole:
    @staticmethod
    def pigeonhole(holes):
        """PHP(holes+1, holes): classic UNSAT family requiring real search."""
        pigeons = holes + 1

        def var(p, h):
            return p * holes + h + 1

        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        assert solve_clauses(self.pigeonhole(holes)).status is SatStatus.UNSAT

    def test_pigeonhole_sat_when_enough_holes(self):
        # 3 pigeons in 3 holes: satisfiable.
        holes = 3

        def var(p, h):
            return p * holes + h + 1

        clauses = [[var(p, h) for h in range(holes)] for p in range(holes)]
        for h in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    clauses.append([-var(p1, h), -var(p2, h)])
        assert solve_clauses(clauses).is_sat


class TestLimits:
    def test_conflict_limit_returns_unknown(self):
        clauses = TestPigeonhole.pigeonhole(6)
        result = solve_clauses(clauses, conflict_limit=3)
        assert result.status is SatStatus.UNKNOWN


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


class TestRandomInstances:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_agrees_with_brute_force(self, data):
        num_vars = data.draw(st.integers(1, 8))
        num_clauses = data.draw(st.integers(1, 30))
        literal = st.integers(1, num_vars).flatmap(
            lambda v: st.sampled_from([v, -v]))
        clauses = data.draw(st.lists(
            st.lists(literal, min_size=1, max_size=4),
            min_size=num_clauses, max_size=num_clauses))
        expected = brute_force_sat(clauses, num_vars)
        result = solve_clauses(clauses)
        assert result.is_sat == expected
        if result.is_sat:
            assert check_model(clauses, result.model)


class TestAssumptions:
    def test_assumption_restricts_models(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.is_sat
        assert result.model[1] is False and result.model[2] is True

    def test_unsat_under_assumptions_is_not_permanent(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([1, -2])
        assert solver.solve(assumptions=[-1]).is_unsat
        # The database itself stays satisfiable afterwards...
        assert solver.solve().is_sat
        # ...and the same assumption set is still answerable.
        assert solver.solve(assumptions=[-1]).is_unsat
        assert solver.solve(assumptions=[1]).is_sat

    def test_contradictory_assumption_pair(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[3, -3]).is_unsat
        assert solver.solve().is_sat

    def test_assumption_on_fresh_variable(self):
        solver = SatSolver()
        result = solver.solve(assumptions=[5])
        assert result.is_sat and result.model[5] is True

    def test_zero_assumption_rejected(self):
        with pytest.raises(ValueError):
            SatSolver().solve(assumptions=[0])

    def test_level0_conflict_is_permanent(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]).is_unsat
        assert solver.solve().is_unsat

    def test_clauses_added_between_solves_propagate(self):
        # After the first solve the level-0 trail holds -2 and 1; the
        # clauses added afterwards watch literals already false there and
        # must still be replayed (the dirty-rescan path).
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-2])
        assert solver.solve().is_sat
        solver.add_clauses([[-1, 3], [-3, 2]])
        assert solver.solve().is_unsat

    def test_learned_clauses_survive_across_solves(self):
        # PHP(4,3) forces real search; the learned clauses it leaves
        # behind must be retained and must not change later verdicts
        # (the conjoined-formula property test below covers this at
        # scale, this is the focused case).
        solver = SatSolver()
        solver.add_clauses(TestPigeonhole.pigeonhole(3))
        assert solver.solve().is_unsat
        assert solver.learned_clauses > 0
        assert solver.solve().is_unsat


class TestIncrementalAgainstOneShot:
    """A session's ``solve(assumptions=A)`` must agree with a *fresh*
    ``solve_clauses`` of the conjoined formula (database + one unit per
    assumption), across interleaved clause additions and UNSAT/SAT
    flips — the learned-clause soundness property of docs/solver.md."""

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_interleaved_assumption_solves_agree_with_fresh(self, data):
        num_vars = data.draw(st.integers(2, 8))
        literal = st.integers(1, num_vars).flatmap(
            lambda v: st.sampled_from([v, -v]))
        clause = st.lists(literal, min_size=1, max_size=4)
        base = data.draw(st.lists(clause, min_size=1, max_size=12))
        solver = SatSolver()
        solver.add_clauses(base)
        added = [list(c) for c in base]
        rounds = data.draw(st.integers(1, 4))
        for _ in range(rounds):
            extra = data.draw(st.lists(clause, min_size=0, max_size=5))
            solver.add_clauses(extra)
            added.extend(list(c) for c in extra)
            assumptions = data.draw(st.lists(literal, min_size=0,
                                             max_size=3))
            result = solver.solve(assumptions=assumptions)
            conjoined = added + [[lit] for lit in assumptions]
            oracle = solve_clauses(conjoined)
            assert result.status is oracle.status
            if result.is_sat:
                assert check_model(conjoined, result.model)


class LinearScanSolver(SatSolver):
    """VSIDS picker downgraded to an O(num_vars) scan per decision.

    The baseline the indexed max-heap replaces; the microbenchmark pins
    the heap to verdict-equivalence and to a bounded slowdown (on small
    var counts raw scans are cheap, so parity — not speedup — is the
    honest invariant)."""

    def _heap_insert(self, var):
        pass

    def _heap_sift_up(self, i):
        pass

    def _heap_sift_down(self, i):
        pass

    def _heap_pop_max(self):
        best = 0
        best_act = -1.0
        assign = self._assign
        act = self._activity
        for var in range(1, self._num_vars + 1):
            if assign[var] == 0 and act[var] > best_act:
                best = var
                best_act = act[var]
        return best if best else None


class TestHeapMicrobench:
    def test_linear_scan_oracle_agrees(self):
        for clauses, expected in [
            (TestPigeonhole.pigeonhole(4), SatStatus.UNSAT),
            ([[1, 2], [-1, 3], [-2, -3], [2, 3]], SatStatus.SAT),
        ]:
            solver = LinearScanSolver()
            solver.add_clauses(clauses)
            result = solver.solve()
            assert result.status is expected
            if result.is_sat:
                assert check_model(clauses, result.model)

    def test_heap_verdicts_match_linear_scan(self):
        clauses = TestPigeonhole.pigeonhole(5)
        heap = SatSolver()
        heap.add_clauses(clauses)
        linear = LinearScanSolver()
        linear.add_clauses(clauses)
        assert heap.solve().status is linear.solve().status is \
            SatStatus.UNSAT

    def test_heap_picker_is_not_slower_than_linear_scan(self):
        # Conflict-heavy UNSAT instance => many decisions + activity
        # bumps.  Generous 3x slack absorbs timer noise on loaded CI
        # boxes; catching an accidental O(n)-per-decision regression is
        # the point, not a precise speedup claim.
        import time as _time

        clauses = TestPigeonhole.pigeonhole(6)

        t0 = _time.perf_counter()
        heap = SatSolver()
        heap.add_clauses(clauses)
        heap_result = heap.solve()
        t_heap = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        linear = LinearScanSolver()
        linear.add_clauses(clauses)
        linear_result = linear.solve()
        t_linear = _time.perf_counter() - t0

        assert heap_result.status is linear_result.status is SatStatus.UNSAT
        assert t_heap <= t_linear * 3.0, (t_heap, t_linear)


class TestClauseMinimization:
    def test_minimization_fires_on_structured_instances(self):
        # Pigeonhole generates chained implications whose learned clauses
        # routinely contain self-subsumed literals.
        from repro.smt.sat import SatSolver

        solver = SatSolver()
        for clause in TestPigeonhole.pigeonhole(5):
            solver.add_clause(clause)
        result = solver.solve()
        assert result.status is SatStatus.UNSAT
        assert solver.minimized_literals > 0

    def test_minimization_preserves_verdicts(self):
        # Covered broadly by the brute-force property test above; this is
        # a quick focused check on a SAT instance with deep implications.
        clauses = [[1, 2, 3], [-1, 4], [-2, 4], [-3, 4], [-4, 5], [-5, 6],
                   [-6, 1, 2]]
        result = solve_clauses(clauses)
        assert result.is_sat
        assert check_model(clauses, result.model)
