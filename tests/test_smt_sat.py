"""Unit and property tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import SatSolver, SatStatus, solve_clauses
from repro.smt.sat import luby


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {i + 1: bits[i] for i in range(num_vars)}
        if all(any(model[abs(lit)] == (lit > 0) for lit in clause)
               for clause in clauses):
            return True
    return False


def check_model(clauses, model):
    return all(any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
               for clause in clauses)


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert solve_clauses([]).status is SatStatus.SAT

    def test_single_unit(self):
        result = solve_clauses([[1]])
        assert result.is_sat and result.model[1] is True

    def test_conflicting_units(self):
        assert solve_clauses([[1], [-1]]).status is SatStatus.UNSAT

    def test_empty_clause_is_unsat(self):
        assert solve_clauses([[1, 2], []]).status is SatStatus.UNSAT

    def test_tautological_clause_ignored(self):
        result = solve_clauses([[1, -1], [2]])
        assert result.is_sat and result.model[2] is True

    def test_duplicate_literals_deduped(self):
        assert solve_clauses([[1, 1, 1]]).is_sat

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_implication_chain(self):
        # 1 -> 2 -> 3 -> 4, with 1 forced true and 4 forced false: unsat.
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4], [-4]]
        assert solve_clauses(clauses).status is SatStatus.UNSAT

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        result = solve_clauses(clauses)
        assert result.is_sat
        assert check_model(clauses, result.model)


class TestPigeonhole:
    @staticmethod
    def pigeonhole(holes):
        """PHP(holes+1, holes): classic UNSAT family requiring real search."""
        pigeons = holes + 1

        def var(p, h):
            return p * holes + h + 1

        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        assert solve_clauses(self.pigeonhole(holes)).status is SatStatus.UNSAT

    def test_pigeonhole_sat_when_enough_holes(self):
        # 3 pigeons in 3 holes: satisfiable.
        holes = 3

        def var(p, h):
            return p * holes + h + 1

        clauses = [[var(p, h) for h in range(holes)] for p in range(holes)]
        for h in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    clauses.append([-var(p1, h), -var(p2, h)])
        assert solve_clauses(clauses).is_sat


class TestLimits:
    def test_conflict_limit_returns_unknown(self):
        clauses = TestPigeonhole.pigeonhole(6)
        result = solve_clauses(clauses, conflict_limit=3)
        assert result.status is SatStatus.UNKNOWN


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


class TestRandomInstances:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_agrees_with_brute_force(self, data):
        num_vars = data.draw(st.integers(1, 8))
        num_clauses = data.draw(st.integers(1, 30))
        literal = st.integers(1, num_vars).flatmap(
            lambda v: st.sampled_from([v, -v]))
        clauses = data.draw(st.lists(
            st.lists(literal, min_size=1, max_size=4),
            min_size=num_clauses, max_size=num_clauses))
        expected = brute_force_sat(clauses, num_vars)
        result = solve_clauses(clauses)
        assert result.is_sat == expected
        if result.is_sat:
            assert check_model(clauses, result.model)


class TestClauseMinimization:
    def test_minimization_fires_on_structured_instances(self):
        # Pigeonhole generates chained implications whose learned clauses
        # routinely contain self-subsumed literals.
        from repro.smt.sat import SatSolver

        solver = SatSolver()
        for clause in TestPigeonhole.pigeonhole(5):
            solver.add_clause(clause)
        result = solver.solve()
        assert result.status is SatStatus.UNSAT
        assert solver.minimized_literals > 0

    def test_minimization_preserves_verdicts(self):
        # Covered broadly by the brute-force property test above; this is
        # a quick focused check on a SAT instance with deep implications.
        clauses = [[1, 2, 3], [-1, 4], [-2, 4], [-3, 4], [-4, 5], [-5, 6],
                   [-6, 1, 2]]
        result = solve_clauses(clauses)
        assert result.is_sat
        assert check_model(clauses, result.model)
