"""Unit tests for the hash-consed term DAG."""

import pytest

from repro.smt import BOOL, TermManager, bitvec, to_sexpr


@pytest.fixture
def mgr() -> TermManager:
    return TermManager()


class TestInterning:
    def test_identical_constructions_are_the_same_object(self, mgr):
        x = mgr.bv_var("x", 8)
        y = mgr.bv_var("y", 8)
        assert mgr.bvadd(x, y) is mgr.bvadd(x, y)

    def test_distinct_constructions_differ(self, mgr):
        x = mgr.bv_var("x", 8)
        y = mgr.bv_var("y", 8)
        assert mgr.bvadd(x, y) is not mgr.bvadd(y, x)

    def test_same_name_different_sorts_are_distinct_vars(self, mgr):
        assert mgr.bv_var("v", 8) is not mgr.bv_var("v", 16)
        assert mgr.bv_var("v", 8) is not mgr.bool_var("v")

    def test_constants_are_normalised_modulo_width(self, mgr):
        assert mgr.bv_const(256, 8) is mgr.bv_const(0, 8)
        assert mgr.bv_const(-1, 8) is mgr.bv_const(255, 8)

    def test_manager_len_counts_interned_terms(self, mgr):
        before = len(mgr)
        x = mgr.bv_var("x", 8)
        mgr.bvadd(x, x)
        mgr.bvadd(x, x)  # duplicate: no new node
        assert len(mgr) == before + 2


class TestSortChecking:
    def test_mixed_width_addition_rejected(self, mgr):
        with pytest.raises(TypeError):
            mgr.bvadd(mgr.bv_var("x", 8), mgr.bv_var("y", 16))

    def test_bool_arithmetic_rejected(self, mgr):
        with pytest.raises(TypeError):
            mgr.bvadd(mgr.bool_var("p"), mgr.bool_var("q"))

    def test_bv_used_as_condition_rejected(self, mgr):
        x = mgr.bv_var("x", 8)
        with pytest.raises(TypeError):
            mgr.ite(x, x, x)

    def test_ite_branch_mismatch_rejected(self, mgr):
        p = mgr.bool_var("p")
        with pytest.raises(TypeError):
            mgr.ite(p, mgr.bv_var("x", 8), mgr.bool_var("q"))

    def test_eq_sort_mismatch_rejected(self, mgr):
        with pytest.raises(TypeError):
            mgr.eq(mgr.bv_var("x", 8), mgr.bool_var("p"))


class TestAccessors:
    def test_var_name(self, mgr):
        assert mgr.bv_var("width", 8).name == "width"

    def test_name_on_non_var_raises(self, mgr):
        with pytest.raises(ValueError):
            _ = mgr.bv_const(1, 8).name

    def test_const_values(self, mgr):
        assert mgr.bv_const(42, 8).value == 42
        assert mgr.true.value == 1
        assert mgr.false.value == 0

    def test_value_on_non_const_raises(self, mgr):
        with pytest.raises(ValueError):
            _ = mgr.bv_var("x", 8).value


class TestDagTraversal:
    def test_iter_dag_children_before_parents(self, mgr):
        x = mgr.bv_var("x", 8)
        y = mgr.bv_var("y", 8)
        expr = mgr.bvmul(mgr.bvadd(x, y), x)
        order = list(expr.iter_dag())
        positions = {t.tid: i for i, t in enumerate(order)}
        for term in order:
            for arg in term.args:
                assert positions[arg.tid] < positions[term.tid]

    def test_dag_size_counts_shared_nodes_once(self, mgr):
        x = mgr.bv_var("x", 8)
        shared = mgr.bvadd(x, x)
        expr = mgr.bvmul(shared, shared)
        # nodes: x, shared, expr
        assert expr.dag_size() == 3

    def test_free_vars(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        p = mgr.bool_var("p")
        expr = mgr.ite(p, mgr.bvadd(x, y), x)
        assert expr.free_vars() == {x, y, p}


class TestSubstitution:
    def test_substitute_variable(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        expr = mgr.bvadd(x, mgr.bvmul(x, y))
        result = mgr.substitute(expr, {x: mgr.bv_const(3, 8)})
        three = mgr.bv_const(3, 8)
        assert result is mgr.bvadd(three, mgr.bvmul(three, y))

    def test_substitute_subterm(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        inner = mgr.bvadd(x, y)
        expr = mgr.bvmul(inner, x)
        result = mgr.substitute(expr, {inner: y})
        assert result is mgr.bvmul(y, x)

    def test_substitute_is_simultaneous(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        expr = mgr.bvadd(x, y)
        result = mgr.substitute(expr, {x: y, y: x})
        assert result is mgr.bvadd(y, x)

    def test_rename_suffixes_all_vars(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        expr = mgr.eq(mgr.bvadd(x, y), mgr.bv_const(0, 8))
        renamed = mgr.rename(expr, "#1")
        names = {v.name for v in renamed.free_vars()}
        assert names == {"x#1", "y#1"}

    def test_rename_preserves_structure_size(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        expr = mgr.eq(mgr.bvadd(x, y), mgr.bv_const(0, 8))
        assert mgr.rename(expr, "#1").dag_size() == expr.dag_size()


class TestFreshVars:
    def test_fresh_vars_are_distinct(self, mgr):
        a = mgr.fresh_var(BOOL)
        b = mgr.fresh_var(BOOL)
        assert a is not b

    def test_fresh_var_sort(self, mgr):
        assert mgr.fresh_var(bitvec(8)).sort == bitvec(8)


class TestPrinting:
    def test_sexpr_round_structure(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = mgr.eq(mgr.bvadd(x, mgr.bv_const(1, 8)), x)
        assert to_sexpr(expr) == "(= (bvadd x #x01) x)"

    def test_sexpr_depth_limit(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = x
        for _ in range(10):
            expr = mgr.bvadd(expr, x)
        assert "..." in to_sexpr(expr, max_depth=2)
