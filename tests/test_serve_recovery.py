"""Crash-only serving: journal durability and session recovery.

The restart-recovery differential (ISSUE acceptance): a daemon killed
without warning and restarted over the same cache root serves the same
tenants — recovered lazily from their session journals — with
byte-identical findings and zero SMT queries (the warm artifact store
replays every verdict).  A drained shutdown leaves a clean-shutdown
marker so telemetry can tell deploys from crashes.
"""

import asyncio
import json
import os

from repro.serve import ServeApp, ServeConfig, UNKNOWN_TENANT
from repro.serve.journal import (COMPACT_THRESHOLD, JOURNAL_SCHEMA,
                                 SessionJournal)

SOURCE = """
fun bar(x) {
  y = x * 2;
  return y;
}
fun main(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
"""

#: Same interface, flipped guard: the deref becomes infeasible.
EDITED_MAIN = """fun main(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < c) { deref(p); }
  return 0;
}"""


def run(coro):
    return asyncio.run(coro)


def rpc(app, method, request_id=1, **params):
    return app.handle({"jsonrpc": "2.0", "id": request_id,
                       "method": method, "params": params})


def make_app(tmp, **kwargs) -> ServeApp:
    kwargs.setdefault("watchdog_interval", 0.0)
    return ServeApp(ServeConfig(cache_root=tmp, **kwargs))


# --------------------------------------------------------------------- #
# Journal unit tests
# --------------------------------------------------------------------- #


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "t")
        journal.record_source(1, "fun main() { return 0; }",
                              {"engine": "fusion"})
        state = SessionJournal(str(tmp_path), "t").load()
        assert state is not None
        assert state.tenant == "t" and state.generation == 1
        assert state.source == "fun main() { return 0; }"
        assert state.settings == {"engine": "fusion"}
        assert not state.clean

    def test_newest_generation_wins(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "t")
        journal.record_source(1, "v1", {})
        journal.record_source(2, "v2", {})
        state = journal.load()
        assert state.generation == 2 and state.source == "v2"

    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "t")
        journal.record_source(1, "v1", {})
        journal.record_source(2, "v2", {})
        with open(journal.path, "r+", encoding="utf-8") as handle:
            body = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(body[:len(body) - 20])  # tear the last record
        state = journal.load()
        assert state is not None
        assert state.generation == 1 and state.source == "v1"
        assert state.records_skipped == 1

    def test_bit_flip_never_trusted(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "t")
        journal.record_source(1, "v1", {})
        with open(journal.path, "rb") as handle:
            body = bytearray(handle.read())
        body[len(body) // 2] ^= 0x01
        with open(journal.path, "wb") as handle:
            handle.write(bytes(body))
        assert journal.load() is None

    def test_foreign_schema_is_skipped(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "t")
        journal.record_source(1, "v1", {})
        import hashlib

        record = {"schema": "repro-serve-journal/999", "kind": "source",
                  "tenant": "t", "generation": 9, "source": "evil",
                  "settings": {}}
        canonical = json.dumps(record, sort_keys=True,
                               separators=(",", ":"))
        sealed = json.dumps(
            dict(record,
                 sha256=hashlib.sha256(canonical.encode()).hexdigest()),
            sort_keys=True, separators=(",", ":"))
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(sealed + "\n")
        state = journal.load()
        assert state.generation == 1 and state.records_skipped == 1

    def test_compaction_bounds_the_file(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "t")
        for generation in range(1, COMPACT_THRESHOLD + 5):
            journal.record_source(generation, f"v{generation}", {})
        assert journal.compactions >= 1
        with open(journal.path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) < COMPACT_THRESHOLD
        state = journal.load()
        assert state.generation == COMPACT_THRESHOLD + 4

    def test_clean_shutdown_marker(self, tmp_path):
        journal = SessionJournal(str(tmp_path), "t")
        journal.record_source(3, "v3", {})
        journal.record_clean_shutdown(3)
        assert journal.load().clean
        # A newer source supersedes the marker: that version never saw
        # a drained shutdown.
        journal.record_source(4, "v4", {})
        assert not journal.load().clean

    def test_write_errors_are_soft(self, tmp_path):
        blocked = os.path.join(str(tmp_path), "flat")
        with open(blocked, "w") as handle:
            handle.write("a file where the store dir should be")
        journal = SessionJournal(blocked, "t")
        journal.record_source(1, "v1", {})  # must not raise
        assert journal.write_errors >= 1
        assert journal.load() is None


# --------------------------------------------------------------------- #
# Restart-recovery differential
# --------------------------------------------------------------------- #


class TestCrashRecovery:
    def test_sigkill_restart_replays_with_zero_queries(self, tmp_path):
        async def main():
            tmp = str(tmp_path)
            app1 = make_app(tmp)
            try:
                init = await rpc(app1, "initialize", tenant="t",
                                 source=SOURCE)
                assert "result" in init
                cold = await rpc(app1, "analyze", tenant="t")
                assert cold["result"]["counters"]["smt_queries"] > 0
            finally:
                # Crash: no shutdown RPC, no clean marker.
                app1.close()

            app2 = make_app(tmp)
            try:
                listing = (await rpc(app2, "tenants"))["result"]
                assert listing["tenants"] == []
                assert listing["recoverable"] == ["t"]
                warm = await rpc(app2, "analyze", tenant="t")
                result = warm["result"]
                assert result["counters"]["smt_queries"] == 0
                assert result["counters"]["replayed_verdicts"] \
                    == result["counters"]["candidates"]
                assert json.dumps(result["findings"]) \
                    == json.dumps(cold["result"]["findings"])
                assert result["generation"] \
                    == cold["result"]["generation"]
                serve = (await rpc(app2, "telemetry"))["result"]["serve"]
                assert serve["sessions_recovered"] == 1
                assert serve["recoveries_crash"] == 1
                assert serve["recoveries_clean"] == 0
            finally:
                app2.close()
        run(main())

    def test_recovery_records_loop_stats(self, tmp_path):
        """The rehydrate compile summarizes loops like any accepted
        version; recovered tenants must show up in the telemetry
        ``loops`` section, not just the serve counters."""
        loopy = """fun main(a) {
  p = null;
  i = 0;
  acc = a;
  while (i < 4) { acc = acc + 2; i = i + 1; }
  if (acc > 60) { deref(p); }
  return acc;
}"""

        async def main():
            tmp = str(tmp_path)
            app1 = make_app(tmp)
            try:
                await rpc(app1, "initialize", tenant="t", source=loopy)
                await rpc(app1, "analyze", tenant="t")
            finally:
                app1.close()

            app2 = make_app(tmp)
            try:
                await rpc(app2, "analyze", tenant="t")
                tel = (await rpc(app2, "telemetry"))["result"]
                assert tel["serve"]["sessions_recovered"] == 1
                assert tel["loops"]["loops_summarized"] >= 1
            finally:
                app2.close()
        run(main())

    def test_clean_shutdown_is_counted_as_clean(self, tmp_path):
        async def main():
            tmp = str(tmp_path)
            app1 = make_app(tmp)
            try:
                await rpc(app1, "initialize", tenant="t", source=SOURCE)
                await rpc(app1, "analyze", tenant="t")  # warm the store
                drained = await rpc(app1, "shutdown")
                assert drained["result"]["drained"]
            finally:
                app1.close()

            app2 = make_app(tmp)
            try:
                warm = await rpc(app2, "analyze", tenant="t")
                assert warm["result"]["counters"]["smt_queries"] == 0
                serve = (await rpc(app2, "telemetry"))["result"]["serve"]
                assert serve["recoveries_clean"] == 1
                assert serve["recoveries_crash"] == 0
            finally:
                app2.close()
        run(main())

    def test_update_then_crash_recovers_latest_generation(self, tmp_path):
        async def main():
            tmp = str(tmp_path)
            app1 = make_app(tmp)
            try:
                await rpc(app1, "initialize", tenant="t", source=SOURCE)
                await rpc(app1, "update", tenant="t", function="main",
                          text=EDITED_MAIN)
                edited = await rpc(app1, "analyze", tenant="t")
                assert edited["result"]["generation"] == 2
            finally:
                app1.close()

            app2 = make_app(tmp)
            try:
                warm = await rpc(app2, "analyze", tenant="t")
                assert warm["result"]["generation"] == 2
                assert json.dumps(warm["result"]["findings"]) \
                    == json.dumps(edited["result"]["findings"])
                assert warm["result"]["counters"]["smt_queries"] == 0
            finally:
                app2.close()
        run(main())

    def test_no_journal_means_no_recovery(self, tmp_path):
        async def main():
            tmp = str(tmp_path)
            app1 = make_app(tmp, journal=False)
            try:
                await rpc(app1, "initialize", tenant="t", source=SOURCE)
            finally:
                app1.close()
            app2 = make_app(tmp, journal=False)
            try:
                lost = await rpc(app2, "analyze", tenant="t")
                assert lost["error"]["code"] == UNKNOWN_TENANT
            finally:
                app2.close()
        run(main())

    def test_corrupt_journal_declines_recovery(self, tmp_path):
        async def main():
            tmp = str(tmp_path)
            app1 = make_app(tmp)
            try:
                await rpc(app1, "initialize", tenant="t", source=SOURCE)
            finally:
                app1.close()
            tenants_dir = os.path.join(tmp, "tenants")
            (digest,) = os.listdir(tenants_dir)
            journal_path = os.path.join(tenants_dir, digest,
                                        "journal.jsonl")
            with open(journal_path, "w") as handle:
                handle.write("garbage\n")
            app2 = make_app(tmp)
            try:
                lost = await rpc(app2, "analyze", tenant="t")
                assert lost["error"]["code"] == UNKNOWN_TENANT
            finally:
                app2.close()
        run(main())


# --------------------------------------------------------------------- #
# Health, readiness, watchdog
# --------------------------------------------------------------------- #


class TestHealth:
    def test_health_method_reports_ready(self, tmp_path):
        async def main():
            app = make_app(str(tmp_path))
            try:
                health = (await rpc(app, "health"))["result"]
                assert health == {"ok": True, "ready": True,
                                  "reasons": []}
            finally:
                app.close()
        run(main())

    def test_draining_flips_readiness(self, tmp_path):
        async def main():
            app = make_app(str(tmp_path))
            try:
                app._draining = True
                health = (await rpc(app, "health"))["result"]
                assert health["ok"] and not health["ready"]
                assert "draining" in health["reasons"]
            finally:
                app.close()
        run(main())

    def test_watchdog_rebuilds_a_wedged_executor(self, tmp_path):
        import threading
        import time

        app = ServeApp(ServeConfig(cache_root=str(tmp_path), workers=1,
                                   watchdog_interval=0.1))
        release = threading.Event()
        try:
            app._pool.submit(release.wait)  # wedge the only worker
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if app.telemetry.serve["watchdog_rebuilds"] >= 1:
                    break
                time.sleep(0.05)
            assert app.telemetry.serve["watchdog_rebuilds"] >= 1
            # The rebuilt pool accepts and runs new work.
            assert app._pool.submit(lambda: 42).result(timeout=5.0) == 42
        finally:
            release.set()
            app.close()


class TestJournalTelemetry:
    def test_journal_records_are_counted(self, tmp_path):
        async def main():
            app = make_app(str(tmp_path))
            try:
                await rpc(app, "initialize", tenant="t", source=SOURCE)
                await rpc(app, "update", tenant="t", function="main",
                          text=EDITED_MAIN)
                serve = (await rpc(app, "telemetry"))["result"]["serve"]
                assert serve["journal_records"] == 2
            finally:
                app.close()
        run(main())

    def test_journal_schema_is_stamped(self, tmp_path):
        async def main():
            app = make_app(str(tmp_path))
            try:
                await rpc(app, "initialize", tenant="t", source=SOURCE)
            finally:
                app.close()
            tenants_dir = os.path.join(str(tmp_path), "tenants")
            (digest,) = os.listdir(tenants_dir)
            path = os.path.join(tenants_dir, digest, "journal.jsonl")
            with open(path) as handle:
                record = json.loads(handle.readline())
            assert record["schema"] == JOURNAL_SCHEMA
        run(main())
