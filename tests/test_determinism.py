"""Run-to-run determinism of ``repro analyze`` output.

Two runs of the same analysis must produce byte-identical findings —
same report order, same JSON key order, same witness key order — both
run-to-run on one process, across fresh processes (the PDG and term
managers are rebuilt), and cold-vs-warm through the artifact store.
Wall-clock fields (``summary``'s ``0.01s``, telemetry's timings) are the
only sanctioned difference, so comparisons strip exactly those.
"""

import json
import tempfile

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.cli import main

SOURCE = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
fun safe(a) {
  q = null;
  if (a < a) { deref(q); }
  return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.fl"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def generated_file(tmp_path):
    spec = SubjectSpec("determinism", seed=9, num_functions=6, layers=3,
                       avg_stmts=5, call_fanout=2, null_bugs=(1, 1, 1))
    path = tmp_path / "gen.fl"
    path.write_text(generate_subject(spec).source)
    return str(path)


def run_analyze(capsys, *argv) -> str:
    code = main(["analyze", *argv])
    assert code in (0, 1)
    return capsys.readouterr().out


def findings_text(stdout: str) -> str:
    """Everything except the wall-time-bearing summary line(s)."""
    return "\n".join(line for line in stdout.splitlines()
                     if "mem units" not in line)


def findings_json(stdout: str) -> dict:
    payload = json.loads(stdout)
    del payload["summary"]  # contains wall time; the sole timing field
    return payload


class TestAnalyzeDeterminism:
    def test_text_output_is_byte_identical(self, source_file, capsys):
        first = run_analyze(capsys, "--subject", source_file)
        second = run_analyze(capsys, "--subject", source_file)
        assert findings_text(first) == findings_text(second)
        assert "[BUG]" in first

    def test_json_output_is_byte_identical(self, generated_file, capsys):
        first = run_analyze(capsys, "--subject", generated_file, "--json")
        second = run_analyze(capsys, "--subject", generated_file, "--json")
        # Byte-level on the serialised findings, not just value-level:
        # key order and formatting must be stable too.
        assert findings_text(first) == findings_text(second)
        assert json.dumps(findings_json(first), sort_keys=False) \
            == json.dumps(findings_json(second), sort_keys=False)

    def test_registry_subject_is_deterministic(self, capsys):
        first = run_analyze(capsys, "--subject", "mcf", "--json")
        second = run_analyze(capsys, "--subject", "mcf", "--json")
        assert findings_text(first) == findings_text(second)

    def test_warm_findings_match_cold_bytes(self, generated_file, capsys):
        with tempfile.TemporaryDirectory() as root:
            cold = run_analyze(capsys, "--subject", generated_file,
                               "--json", "--cache-dir", root)
            warm = run_analyze(capsys, "--subject", generated_file,
                               "--json", "--cache-dir", root)
        assert findings_json(cold)["findings"] \
            == findings_json(warm)["findings"]
        # Witness key order must survive the JSON round-trip through
        # the store (entries are written with sorted keys).
        for finding in findings_json(warm)["findings"]:
            keys = list(finding["witness"])
            assert keys == sorted(keys)


class TestTelemetryKeyOrder:
    def test_schema_and_key_order_are_stable(self, generated_file,
                                             tmp_path, capsys):
        outs = []
        for name in ("t1.json", "t2.json"):
            path = tmp_path / name
            run_analyze(capsys, "--subject", generated_file,
                        "--telemetry", str(path))
            outs.append(json.loads(path.read_text()))
        first, second = outs
        assert first["schema"] == "repro-exec-telemetry/10"
        assert list(first) == list(second)
        for section in ("solver", "store", "triage", "faults", "memory"):
            assert list(first[section]) == list(second[section])
        assert first["counters"] == second["counters"]
