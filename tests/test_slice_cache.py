"""Properties of the slice memo (`repro.exec.cache`).

The cache's correctness contract: a hit, rehydrated against the querying
path's actual frames, is *equal* to a fresh ``compute_slice`` — same
needed sets, same requirements in the same order — and therefore solving
against a cached slice can never change an SMT verdict, no matter how
small the capacity (evictions only cost recomputation, never precision).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.exec import SliceCache, path_fingerprint
from repro.fusion import FusionEngine, prepare_pdg
from repro.pdg.slicing import compute_slice
from repro.sparse.engine import collect_candidates


def fuzz_candidates(seed, num_functions=6):
    spec = SubjectSpec("slice-cache", seed=seed,
                       num_functions=num_functions, layers=3, avg_stmts=5,
                       call_fanout=2, null_bugs=(1, 1, 1))
    pdg = prepare_pdg(generate_subject(spec).program)
    return pdg, collect_candidates(pdg, NullDereferenceChecker())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_cache_hit_equals_fresh_recompute(seed):
    """Prime the cache, query everything again: every second-round slice
    (a hit, frame-rehydrated) equals a fresh computation exactly."""
    pdg, candidates = fuzz_candidates(seed)
    cache = SliceCache(capacity=None)
    for candidate in candidates:
        cache.get(pdg, [candidate.path])
    for candidate in candidates:
        cached = cache.get(pdg, [candidate.path])
        fresh = compute_slice(pdg, [candidate.path])
        assert cached.needed == fresh.needed
        assert cached.requirements == fresh.requirements
    hits, misses, _ = cache.counters()
    assert misses <= len(candidates)  # round one, minus renaming shares
    assert hits >= len(candidates)    # round two hits every time


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_eviction_never_changes_verdicts(seed):
    """capacity=1 forces an eviction on nearly every query; statuses must
    match a run with no cache at all."""
    pdg, candidates = fuzz_candidates(seed)
    engine = FusionEngine(pdg)
    cache = SliceCache(capacity=1)

    def status(the_slice, candidate):
        return engine.solver.solve([candidate.path], the_slice).status

    for candidate in candidates:
        evicted = status(cache.get(pdg, [candidate.path]), candidate)
        fresh = status(compute_slice(pdg, [candidate.path]), candidate)
        assert evicted == fresh
    assert len(cache) <= 1
    if len(candidates) > 1:
        assert cache.counters()[2] > 0, "capacity=1 never evicted"


def test_capacity_zero_disables_caching():
    pdg, candidates = fuzz_candidates(0)
    cache = SliceCache(capacity=0)
    for _ in range(2):
        for candidate in candidates:
            the_slice = cache.get(pdg, [candidate.path])
            fresh = compute_slice(pdg, [candidate.path])
            assert the_slice.needed == fresh.needed
            assert the_slice.requirements == fresh.requirements
    hits, misses, evictions = cache.counters()
    assert hits == 0
    assert misses == 2 * len(candidates)
    assert evictions == 0
    assert len(cache) == 0


def test_fingerprint_is_frame_renaming_invariant():
    """Re-collecting candidates hands out fresh frame ids; structurally
    identical paths must still map to one fingerprint (that invariance is
    what makes the memo useful across workers and re-collections)."""
    pdg, first = fuzz_candidates(42)
    _, second = fuzz_candidates(42)
    assert len(first) == len(second)
    for a, b in zip(first, second):
        key_a, _, _ = path_fingerprint([a.path])
        key_b, _, _ = path_fingerprint([b.path])
        assert key_a == key_b


def test_fingerprint_distinguishes_multi_path_sets():
    """A two-path set is not fingerprint-equal to either of its members,
    and the canonical frame list covers both paths' contexts."""
    pdg, candidates = fuzz_candidates(1)
    if len(candidates) < 2:
        pytest.skip("fuzz subject produced a single candidate")
    a, b = candidates[0].path, candidates[1].path
    pair_key, frames, canon_by_fid = path_fingerprint([a, b])
    single_key, _, _ = path_fingerprint([a])
    assert pair_key != single_key
    step_frames = {step.frame.fid for step in a.steps} | \
                  {step.frame.fid for step in b.steps}
    assert step_frames <= set(canon_by_fid)
    assert sorted(canon_by_fid.values()) == list(range(len(frames)))


def test_cached_multi_path_slice_round_trips():
    """Simultaneous-path slices (Example 3.2 shape) memoize too."""
    pdg, candidates = fuzz_candidates(1)
    if len(candidates) < 2:
        pytest.skip("fuzz subject produced a single candidate")
    paths = [candidates[0].path, candidates[1].path]
    cache = SliceCache()
    first = cache.get(pdg, paths)
    again = cache.get(pdg, paths)
    fresh = compute_slice(pdg, paths)
    assert cache.counters()[:2] == (1, 1)
    for produced in (first, again):
        assert produced.needed == fresh.needed
        assert produced.requirements == fresh.requirements
