"""Unit and integration tests for the persistent artifact store.

Contract under test (`repro.exec.store`, docs/caching.md):

* content keys are stable under formatting and unrelated-function edits,
  and sensitive to any body change;
* a warm run on an unchanged program replays every verdict with zero
  SMT queries and an identical report list;
* invalidation is per-entry and dependency-exact — editing one function
  re-solves only candidates whose recorded deps touch it;
* UNKNOWN verdicts are never persisted;
* any corrupted store file degrades to a miss, never an error.
"""

import json
import os
import re

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.exec import ArtifactStore, Telemetry
from repro.fusion import FusionEngine, prepare_pdg
from repro.lang import LoweringConfig, compile_source
from repro.lang.fingerprint import function_key, program_keys
from repro.smt.solver import SmtStatus


def fuzz_source(seed: int) -> str:
    spec = SubjectSpec("store-unit", seed=seed, num_functions=5,
                       layers=2, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    return generate_subject(spec).source


def program_of(source: str):
    return compile_source(source, LoweringConfig())


def edit_one_constant(source: str) -> str:
    """Bump the first additive constant in the source (a body edit that
    touches exactly one function)."""
    edited, count = re.subn(r"\+ (\d+);",
                            lambda m: f"+ {int(m.group(1)) + 1};",
                            source, count=1)
    assert count == 1, "generator produced no additive constant"
    return edited


def analyze(source: str, store=None, telemetry=None):
    engine = FusionEngine(prepare_pdg(program_of(source)))
    return engine.analyze(NullDereferenceChecker(), store=store,
                          telemetry=telemetry)


def report_key(result):
    return [(r.feasible, r.source.function, repr(r.source.stmt),
             r.sink.function, repr(r.sink.stmt),
             tuple(sorted(r.witness.items())))
            for r in result.reports]


# --------------------------------------------------------------------- #
# Content keys
# --------------------------------------------------------------------- #


class TestFingerprints:
    def test_stable_under_whitespace_and_comments(self):
        src = fuzz_source(3)
        noisy = "# header comment\n" + src.replace("\n", "\n\n", 5)
        assert program_keys(program_of(src)) \
            == program_keys(program_of(noisy))

    def test_unrelated_edit_leaves_other_keys_alone(self):
        src = fuzz_source(4)
        program = program_of(src)
        edited = program_of(edit_one_constant(src))
        before = program_keys(program)
        after = program_keys(edited)
        assert before != after
        changed = [fn for fn in before if before[fn] != after.get(fn)]
        assert len(changed) == 1

    def test_sensitive_to_width(self):
        program = program_of(fuzz_source(5))
        fn = next(iter(program.functions.values()))
        assert function_key(fn, 8) != function_key(fn, 16)


# --------------------------------------------------------------------- #
# Warm replay
# --------------------------------------------------------------------- #


class TestWarmReplay:
    def test_unchanged_program_replays_everything(self, tmp_path):
        src = fuzz_source(11)
        store = ArtifactStore(str(tmp_path), label="t")
        cold = analyze(src, store=store)
        assert cold.candidates > 0
        assert store.last_run.cold
        assert store.last_run.committed == cold.candidates

        warm = analyze(src, store=store)
        stats = store.last_run
        assert not stats.cold
        assert warm.smt_queries == 0
        assert warm.replayed_verdicts == warm.candidates
        assert stats.hits == cold.candidates
        assert stats.misses == 0 and stats.invalidations == 0
        assert stats.dirty_functions == set()
        assert report_key(warm) == report_key(cold)
        assert all(r.replayed for r in warm.reports)

    def test_replay_counts_flow_into_telemetry(self, tmp_path):
        src = fuzz_source(12)
        store = ArtifactStore(str(tmp_path), label="t")
        analyze(src, store=store)
        telemetry = Telemetry()
        warm = analyze(src, store=store, telemetry=telemetry)
        section = telemetry.as_dict()["store"]
        assert section["store_hits"] == warm.candidates
        assert section["replayed_verdicts"] == warm.candidates
        assert section["store_misses"] == 0
        assert section["dirty_functions"] == 0

    def test_different_config_never_shares_entries(self, tmp_path):
        src = fuzz_source(13)
        store = ArtifactStore(str(tmp_path), label="t")
        analyze(src, store=store)
        from repro.fusion import FusionConfig, GraphSolverConfig

        engine = FusionEngine(prepare_pdg(program_of(src)),
                              FusionConfig(solver=GraphSolverConfig(
                                  use_quickpaths=False)))
        engine.analyze(NullDereferenceChecker(), store=store)
        stats = store.last_run
        assert stats.hits == 0  # distinct config fingerprint, distinct keys
        assert stats.cold      # and distinct per-function state records


# --------------------------------------------------------------------- #
# Invalidation
# --------------------------------------------------------------------- #


class TestInvalidation:
    def test_edit_invalidates_only_dependents(self, tmp_path):
        src = fuzz_source(21)
        store = ArtifactStore(str(tmp_path), label="t")
        cold = analyze(src, store=store)
        edited = edit_one_constant(src)
        warm = analyze(edited, store=store)
        stats = store.last_run
        assert stats.hits + stats.invalidations + stats.misses \
            == warm.candidates
        # The warm result must equal a from-scratch run on the edit.
        fresh = analyze(edited)
        assert report_key(warm) == report_key(fresh)
        assert warm.smt_queries + warm.replayed_verdicts \
            == cold.candidates or warm.candidates != cold.candidates

    def test_added_function_keeps_existing_verdicts(self, tmp_path):
        src = fuzz_source(22)
        store = ArtifactStore(str(tmp_path), label="t")
        cold = analyze(src, store=store)
        grown = src + ("\nfun zzz_new(a, b) {\n  v1 = a + 1;\n"
                       "  return v1 * 2 + 1;\n}\n")
        warm = analyze(grown, store=store)
        stats = store.last_run
        assert stats.dirty_functions == {"zzz_new"}
        assert stats.hits == cold.candidates
        assert warm.smt_queries == 0

    def test_deleted_function_recorded_as_dirty(self, tmp_path):
        extra = ("\nfun zzz_new(a, b) {\n  v1 = a + 1;\n"
                 "  return v1 * 2 + 1;\n}\n")
        src = fuzz_source(23)
        store = ArtifactStore(str(tmp_path), label="t")
        analyze(src + extra, store=store)
        warm = analyze(src, store=store)
        stats = store.last_run
        assert "zzz_new" in stats.changed_functions
        assert report_key(warm) == report_key(analyze(src))


# --------------------------------------------------------------------- #
# UNKNOWN verdicts and corruption
# --------------------------------------------------------------------- #


class TestUncacheable:
    def test_unknown_is_never_persisted(self, tmp_path):
        src = fuzz_source(31)
        store = ArtifactStore(str(tmp_path), label="t")
        pdg = prepare_pdg(program_of(src))
        binding = store.bind(pdg, {"engine": "fusion"}, "null-deref")
        from repro.checkers.base import BugReport
        from repro.sparse.engine import collect_candidates

        candidates = collect_candidates(pdg, NullDereferenceChecker())
        assert candidates
        reports = {}
        pending = binding.replay(candidates, reports)
        assert pending == list(range(len(candidates)))
        for index, candidate in enumerate(candidates):
            reports[index] = BugReport(candidate, True)
            binding.observe(index, SmtStatus.UNKNOWN)
        binding.commit(candidates, reports)
        assert store.last_run.committed == 0
        # And the next run misses on everything.
        binding2 = store.bind(pdg, {"engine": "fusion"}, "null-deref")
        assert binding2.replay(candidates, {}) \
            == list(range(len(candidates)))
        assert binding2.stats.misses == len(candidates)


class TestCorruption:
    def _object_files(self, root):
        out = []
        for dirpath, _dirs, files in os.walk(os.path.join(root, "objects")):
            out.extend(os.path.join(dirpath, f) for f in files)
        return sorted(out)

    @pytest.mark.parametrize("garbage", [
        "", "not json", '{"schema": "repro-exec-store/999"}',
        '["a", "list"]', '{"deps": 5, "report": null}',
    ])
    def test_corrupt_entries_degrade_to_miss(self, tmp_path, garbage):
        src = fuzz_source(41)
        store = ArtifactStore(str(tmp_path), label="t")
        cold = analyze(src, store=store)
        for path in self._object_files(str(tmp_path)):
            with open(path, "w") as handle:
                handle.write(garbage)
        warm = analyze(src, store=store)
        assert store.last_run.hits == 0
        assert report_key(warm) == report_key(cold)
        # The rewrite repairs the store: the next run replays fully.
        again = analyze(src, store=store)
        assert again.smt_queries == 0

    def test_corrupt_state_file_means_cold_diff(self, tmp_path):
        src = fuzz_source(42)
        store = ArtifactStore(str(tmp_path), label="t")
        analyze(src, store=store)
        state_dir = os.path.join(str(tmp_path), "state")
        for name in os.listdir(state_dir):
            with open(os.path.join(state_dir, name), "w") as handle:
                handle.write("{broken")
        warm = analyze(src, store=store)
        # Entries themselves are intact, so verdicts still replay; only
        # the dirty-set diff loses its baseline.
        assert store.last_run.cold
        assert warm.smt_queries == 0

    def test_store_dir_never_required(self, tmp_path):
        """A store rooted at an unwritable path degrades to no caching."""
        blocked = os.path.join(str(tmp_path), "flat")
        with open(blocked, "w") as handle:
            handle.write("a plain file where the store dir should be")
        store = ArtifactStore(blocked, label="t")
        src = fuzz_source(43)
        result = analyze(src, store=store)
        assert result.failure is None
        warm = analyze(src, store=store)
        assert report_key(warm) == report_key(result)


class TestEntryLayout:
    def test_entries_are_schema_tagged_checksummed_json(self, tmp_path):
        src = fuzz_source(51)
        store = ArtifactStore(str(tmp_path), label="t")
        analyze(src, store=store)
        files = TestCorruption()._object_files(str(tmp_path))
        assert files
        for path in files:
            with open(path) as handle:
                text = handle.read()
            payload = json.loads(text)
            assert payload["schema"] == "repro-exec-store/2"
            assert set(payload) >= {"deps", "report", "sha256"}
            assert text == json.dumps(payload, sort_keys=True,
                                      separators=(",", ":"))
            # The checksum covers the payload minus itself.
            import hashlib
            recorded = payload.pop("sha256")
            canonical = json.dumps(payload, sort_keys=True,
                                   separators=(",", ":"))
            assert recorded \
                == hashlib.sha256(canonical.encode()).hexdigest()
