"""Edge-case lowering tests, cross-checked against the interpreter.

The return-predication and gated-SSA machinery has the subtlest logic in
the front end; these tests pin its behaviour on the nastiest shapes by
comparing the lowered IR's execution against hand-computed semantics.
"""

import pytest

from repro.lang import Interpreter, LoweringConfig, compile_source


def run(src, args=(), fn="f", **cfg):
    config = LoweringConfig(**cfg) if cfg else None
    program = compile_source(src, config)
    program.validate()
    return Interpreter(program).run(fn, args).return_value.bits


class TestElseIfChains:
    SRC = """
    fun f(a) {
      if (a < 10) { return 1; }
      else if (a < 20) { return 2; }
      else if (a < 30) { return 3; }
      else { return 4; }
    }
    """

    @pytest.mark.parametrize("a,expected", [
        (5, 1), (15, 2), (25, 3), (99, 4), (10, 2), (30, 4)])
    def test_chain_selects_correct_arm(self, a, expected):
        assert run(self.SRC, (a,)) == expected


class TestReturnsInsideLoops:
    SRC = """
    fun f(n) {
      i = 0;
      while (i < 10) {
        if (i == n) { return i * 100; }
        i = i + 1;
      }
      return 7;
    }
    """

    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 100), (2, 200)])
    def test_return_from_unrolled_iteration(self, n, expected):
        assert run(self.SRC, (n,), loop_unroll=3) == expected

    def test_fallthrough_when_bound_exceeded(self):
        # n = 50 never matches within the unrolled iterations; the loop
        # residue is dropped, so control reaches the final return.
        assert run(self.SRC, (50,), loop_unroll=3) == 7


class TestCodeAfterConditionalReturn:
    def test_side_effects_properly_guarded(self):
        src = """
        fun f(a) {
          total = 0;
          if (a > 10) { return 111; }
          total = total + 1;
          if (a > 5) { return 222; }
          total = total + 1;
          return total;
        }
        """
        assert run(src, (20,)) == 111
        assert run(src, (7,)) == 222
        assert run(src, (1,)) == 2

    def test_calls_after_return_do_not_fire(self):
        src = """
        fun f(a) {
          if (a > 10) { return 1; }
          sink(a);
          return 0;
        }
        """
        program = compile_source(src)
        events = Interpreter(program).run("f", (20,)).sink_events
        assert events == []
        events = Interpreter(program).run("f", (3,)).sink_events
        assert len(events) == 1


class TestNestedLoops:
    SRC = """
    fun f(n, m) {
      total = 0;
      i = 0;
      while (i < n) {
        j = 0;
        while (j < m) {
          total = total + 1;
          j = j + 1;
        }
        i = i + 1;
      }
      return total;
    }
    """

    @pytest.mark.parametrize("n,m", [(0, 0), (1, 1), (2, 2), (2, 1)])
    def test_nested_iteration_counts(self, n, m):
        assert run(self.SRC, (n, m), loop_unroll=2) == n * m


class TestBooleanPlumbing:
    def test_boolean_variable_through_merge(self):
        src = """
        fun f(a) {
          ok = a > 5;
          if (a > 100) { ok = a < 120; }
          if (ok) { return 1; }
          return 0;
        }
        """
        assert run(src, (10,)) == 1
        assert run(src, (3,)) == 0
        assert run(src, (110,)) == 1
        assert run(src, (125,)) == 0

    def test_not_operator_lowering(self):
        src = """
        fun f(a) {
          bad = !(a > 5);
          if (bad) { return 1; }
          return 0;
        }
        """
        assert run(src, (3,)) == 1
        assert run(src, (9,)) == 0

    def test_boolean_returning_function_in_condition(self):
        src = """
        fun small(x) { return x < 10; }
        fun f(a) {
          if (small(a)) { return 1; }
          return 0;
        }
        """
        assert run(src, (5,)) == 1
        assert run(src, (50,)) == 0


class TestShadowingAndScopes:
    def test_reassignment_in_branch_merges(self):
        src = """
        fun f(a) {
          x = 1;
          y = 2;
          if (a > 5) {
            x = y + 10;
            y = x + 1;
          }
          return x + y;
        }
        """
        assert run(src, (9,)) == 12 + 13
        assert run(src, (1,)) == 3

    def test_while_condition_uses_updated_values(self):
        src = """
        fun f(n) {
          i = 0;
          s = 0;
          while (s < n) {
            i = i + 1;
            s = s + i;
          }
          return i;
        }
        """
        # s: 1, 3, 6 after 1, 2, 3 iterations.
        assert run(src, (4,), loop_unroll=4) == 3
