"""Unit and property tests for the end-to-end SMT solver (Algorithm 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (SmtSolver, SmtStatus, SolverConfig, TermManager,
                       evaluate, smt_solve)
from strategies import all_assignments, bool_terms, make_manager


@pytest.fixture
def mgr():
    return TermManager()


class TestBasics:
    def test_trivially_sat(self, mgr):
        assert smt_solve(mgr, [mgr.true]).is_sat

    def test_trivially_unsat(self, mgr):
        assert smt_solve(mgr, [mgr.false]).is_unsat

    def test_empty_is_sat(self, mgr):
        assert smt_solve(mgr, []).is_sat

    def test_preprocess_decides_paper_example(self, mgr):
        """Figure 1(b): the whole path condition of foo falls to the
        preprocessing phase (the 21% the paper reports)."""
        v = {n: mgr.bv_var(n, 8)
             for n in ("x1", "y1", "z1", "a", "c",
                       "x2", "y2", "z2", "b", "d")}
        e = mgr.bool_var("e")
        two = mgr.bv_const(2, 8)
        constraints = [
            mgr.eq(v["y1"], mgr.bvmul(v["x1"], two)),
            mgr.eq(v["z1"], v["y1"]),
            mgr.eq(v["a"], v["x1"]),
            mgr.eq(v["c"], v["z1"]),
            mgr.eq(v["y2"], mgr.bvmul(v["x2"], two)),
            mgr.eq(v["z2"], v["y2"]),
            mgr.eq(v["b"], v["x2"]),
            mgr.eq(v["d"], v["z2"]),
            e,
            mgr.eq(e, mgr.slt(v["c"], v["d"])),
        ]
        result = smt_solve(mgr, constraints, want_model=True)
        assert result.is_sat
        assert result.decided_in_preprocess
        for c in constraints:
            assert evaluate(c, result.model) == 1

    def test_needs_sat_search(self, mgr):
        x = mgr.bv_var("x", 8)
        # x*x == 49 needs bit-level reasoning after preprocessing.
        result = smt_solve(mgr, [mgr.eq(mgr.bvmul(x, x),
                                        mgr.bv_const(49, 8))],
                           want_model=True)
        assert result.is_sat
        assert (result.model[x] ** 2) % 256 == 49

    def test_unsat_after_search(self, mgr):
        x = mgr.bv_var("x", 4)
        # x & 1 == 0 and x odd: contradiction that survives to the SAT
        # solver because of the non-linear bit operations.
        constraints = [
            mgr.eq(mgr.bvand(x, mgr.bv_const(1, 4)), mgr.bv_const(0, 4)),
            mgr.eq(mgr.bvand(x, mgr.bv_const(1, 4)), mgr.bv_const(1, 4)),
        ]
        assert smt_solve(mgr, constraints).is_unsat

    def test_model_covers_original_variables(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        constraints = [mgr.eq(y, mgr.bvadd(x, mgr.bv_const(1, 8))),
                       mgr.eq(mgr.bvand(x, x), mgr.bv_const(5, 8))]
        result = smt_solve(mgr, constraints, want_model=True)
        assert result.is_sat
        assert result.model[x] == 5 and result.model[y] == 6


class TestConfig:
    def test_preprocess_can_be_disabled(self, mgr):
        x = mgr.bv_var("x", 8)
        config = SolverConfig(use_preprocess=False)
        result = SmtSolver(mgr, config).check([mgr.eq(x, x)])
        assert result.is_sat
        assert not result.decided_in_preprocess

    def test_solver_counts_preprocess_decisions(self, mgr):
        solver = SmtSolver(mgr)
        solver.check([mgr.true])
        solver.check([mgr.eq(mgr.bv_var("x", 4), mgr.bv_var("x", 4))])
        assert solver.queries == 2
        assert solver.decided_in_preprocess == 2

    def test_selected_passes_forwarded(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        config = SolverConfig(enabled_passes=("constants",))
        result = SmtSolver(mgr, config).check([mgr.eq(y, x)])
        assert result.is_sat  # still solved, just via the SAT back end


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_full_solver_agrees_with_enumeration(self, data):
        mgr, bv_vars, bool_vars = make_manager()
        term = data.draw(bool_terms(mgr, bv_vars, bool_vars))
        expected_sat = any(evaluate(term, env) == 1
                           for env in all_assignments(bv_vars, bool_vars))
        result = smt_solve(mgr, [term], want_model=True)
        assert result.status is not SmtStatus.UNKNOWN
        assert result.is_sat == expected_sat
        if result.is_sat:
            model = dict(result.model)
            for var in bv_vars + bool_vars:
                model.setdefault(var, 0)
            assert evaluate(term, model) == 1
