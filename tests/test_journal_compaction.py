"""Regression tests: the journal's 16-record compaction cadence.

``_count_records`` used to count every line of the journal file —
``clean_shutdown`` markers, blank lines, even corrupt garbage — so the
cadence drifted after a clean-shutdown/restart cycle.  Only ``source``
records supersede each other, so only they count toward the threshold.
"""

import os
import tempfile

import pytest

from repro.serve.journal import COMPACT_THRESHOLD, SessionJournal

SETTINGS = {"engine": "fusion"}


def append_sources(journal: SessionJournal, count: int,
                   start: int = 1) -> None:
    for generation in range(start, start + count):
        journal.record_source(generation, f"fun main() {{ }} # g{generation}",
                              SETTINGS)


def test_compaction_fires_exactly_on_threshold():
    with tempfile.TemporaryDirectory() as root:
        journal = SessionJournal(root, "t")
        append_sources(journal, COMPACT_THRESHOLD - 1)
        assert journal.compactions == 0
        append_sources(journal, 1, start=COMPACT_THRESHOLD)
        assert journal.compactions == 1


@pytest.mark.parametrize("restart", [False, True])
def test_cadence_survives_clean_shutdown(restart):
    """After a clean shutdown the file holds one compacted source record
    plus one marker; the next compaction must fire exactly when the
    *source* count reaches the threshold again — the marker (and the
    restart's lazy recount) must not advance the cadence."""
    with tempfile.TemporaryDirectory() as root:
        journal = SessionJournal(root, "t")
        append_sources(journal, 3)
        journal.record_clean_shutdown(3)
        compactions_before = journal.compactions

        if restart:
            journal = SessionJournal(root, "t")
            compactions_before = 0

        # One compacted source record is already in the file, so the
        # threshold is reached on the (COMPACT_THRESHOLD - 1)-th append.
        append_sources(journal, COMPACT_THRESHOLD - 2, start=10)
        assert journal.compactions == compactions_before
        append_sources(journal, 1, start=99)
        assert journal.compactions == compactions_before + 1


def test_blank_and_garbage_lines_do_not_count():
    with tempfile.TemporaryDirectory() as root:
        journal = SessionJournal(root, "t")
        append_sources(journal, 1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("\n\n{\"not\": \"sealed\"}\n")

        journal = SessionJournal(root, "t")
        append_sources(journal, COMPACT_THRESHOLD - 2, start=10)
        assert journal.compactions == 0
        append_sources(journal, 1, start=99)
        assert journal.compactions == 1
        # Compaction dropped the garbage along with superseded records.
        with open(journal.path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1


def test_recovery_state_unaffected_by_markers():
    with tempfile.TemporaryDirectory() as root:
        journal = SessionJournal(root, "t")
        append_sources(journal, 2)
        journal.record_clean_shutdown(2)
        state = SessionJournal(root, "t").load()
        assert state is not None
        assert state.generation == 2
        assert state.clean
        assert os.path.exists(journal.path)
