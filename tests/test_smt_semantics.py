"""Unit tests for concrete term evaluation."""

import pytest

from repro.smt import TermManager, evaluate, to_signed, to_unsigned


@pytest.fixture
def mgr():
    return TermManager()


class TestSignConversions:
    @pytest.mark.parametrize("value,width,expected", [
        (0, 8, 0), (127, 8, 127), (128, 8, -128), (255, 8, -1),
        (7, 4, 7), (8, 4, -8), (15, 4, -1),
    ])
    def test_to_signed(self, value, width, expected):
        assert to_signed(value, width) == expected

    @pytest.mark.parametrize("value,width,expected", [
        (-1, 8, 255), (256, 8, 0), (300, 8, 44), (5, 8, 5),
    ])
    def test_to_unsigned(self, value, width, expected):
        assert to_unsigned(value, width) == expected


class TestArithmetic:
    def test_wraparound_add(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = mgr.bvadd(x, mgr.bv_const(200, 8))
        assert evaluate(expr, {x: 100}) == 44

    def test_sub_wraps(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = mgr.bvsub(mgr.bv_const(3, 8), x)
        assert evaluate(expr, {x: 5}) == 254

    def test_mul_wraps(self, mgr):
        x = mgr.bv_var("x", 8)
        assert evaluate(mgr.bvmul(x, x), {x: 20}) == (400 % 256)

    def test_udiv_by_zero_is_all_ones(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = mgr.bvudiv(x, mgr.bv_const(0, 8))
        assert evaluate(expr, {x: 7}) == 255

    def test_urem_by_zero_is_dividend(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = mgr.bvurem(x, mgr.bv_const(0, 8))
        assert evaluate(expr, {x: 7}) == 7

    def test_udiv_urem_identity(self, mgr):
        a, b = mgr.bv_var("a", 8), mgr.bv_var("b", 8)
        q = evaluate(mgr.bvudiv(a, b), {a: 23, b: 5})
        r = evaluate(mgr.bvurem(a, b), {a: 23, b: 5})
        assert q * 5 + r == 23 and r < 5

    def test_neg(self, mgr):
        x = mgr.bv_var("x", 8)
        assert evaluate(mgr.bvneg(x), {x: 1}) == 255
        assert evaluate(mgr.bvneg(x), {x: 0}) == 0


class TestShifts:
    def test_shl_basic_and_overflow(self, mgr):
        x, s = mgr.bv_var("x", 8), mgr.bv_var("s", 8)
        expr = mgr.bvshl(x, s)
        assert evaluate(expr, {x: 3, s: 2}) == 12
        assert evaluate(expr, {x: 3, s: 8}) == 0
        assert evaluate(expr, {x: 255, s: 1}) == 254

    def test_lshr_basic_and_overflow(self, mgr):
        x, s = mgr.bv_var("x", 8), mgr.bv_var("s", 8)
        expr = mgr.bvlshr(x, s)
        assert evaluate(expr, {x: 129, s: 7}) == 1
        assert evaluate(expr, {x: 129, s: 200}) == 0


class TestComparisons:
    def test_signed_vs_unsigned_disagree(self, mgr):
        a, b = mgr.bv_var("a", 8), mgr.bv_var("b", 8)
        env = {a: 255, b: 1}  # 255 is -1 signed
        assert evaluate(mgr.ult(a, b), env) == 0
        assert evaluate(mgr.slt(a, b), env) == 1

    def test_sle_boundary(self, mgr):
        a, b = mgr.bv_var("a", 8), mgr.bv_var("b", 8)
        assert evaluate(mgr.sle(a, b), {a: 128, b: 127}) == 1

    def test_surface_aliases(self, mgr):
        a, b = mgr.bv_var("a", 8), mgr.bv_var("b", 8)
        env = {a: 3, b: 5}
        assert evaluate(mgr.lt(a, b), env) == 1
        assert evaluate(mgr.gt(a, b), env) == 0
        assert evaluate(mgr.ge(b, a), env) == 1
        assert evaluate(mgr.le(a, a), env) == 1


class TestBooleans:
    def test_connectives(self, mgr):
        p, q = mgr.bool_var("p"), mgr.bool_var("q")
        env = {p: 1, q: 0}
        assert evaluate(mgr.and_(p, q), env) == 0
        assert evaluate(mgr.or_(p, q), env) == 1
        assert evaluate(mgr.xor(p, q), env) == 1
        assert evaluate(mgr.implies(p, q), env) == 0
        assert evaluate(mgr.implies(q, p), env) == 1
        assert evaluate(mgr.not_(p), env) == 0

    def test_ite_selects_branch(self, mgr):
        p = mgr.bool_var("p")
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        expr = mgr.ite(p, x, y)
        assert evaluate(expr, {p: 1, x: 10, y: 20}) == 10
        assert evaluate(expr, {p: 0, x: 10, y: 20}) == 20

    def test_unassigned_variable_raises(self, mgr):
        with pytest.raises(KeyError):
            evaluate(mgr.bool_var("p"), {})

    def test_nary_and_or(self, mgr):
        ps = [mgr.bool_var(f"p{i}") for i in range(4)]
        env = {p: 1 for p in ps}
        assert evaluate(mgr.and_(*ps), env) == 1
        env[ps[2]] = 0
        assert evaluate(mgr.and_(*ps), env) == 0
        assert evaluate(mgr.or_(*ps), env) == 1
