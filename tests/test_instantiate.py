"""Tests for frame planning and condition assembly."""

from repro.checkers import NullDereferenceChecker
from repro.fusion import (ConditionTransformer, assemble_condition,
                          build_frame_plan, frame_boundary_constraints,
                          frame_suffix, prepare_pdg)
from repro.lang import compile_source
from repro.pdg import compute_slice
from repro.sparse import collect_candidates

ESCAPING = """
fun make() {
  p = null;
  return p;
}
fun top(a) {
  r = make();
  if (a > 9) { deref(r); }
  return 0;
}
"""

ENTERING = """
fun use(p, a) {
  if (a > 9) { deref(p); }
  return 0;
}
fun top(a) {
  q = null;
  z = use(q, a);
  return z;
}
"""


def candidate_of(src):
    pdg = prepare_pdg(compile_source(src))
    [candidate] = collect_candidates(pdg, NullDereferenceChecker())
    return pdg, candidate


class TestFramePlans:
    def test_escaped_caller_plan(self):
        pdg, candidate = candidate_of(ESCAPING)
        plan = build_frame_plan([candidate.path])
        functions = {f.function for f in plan.frames}
        assert functions == {"make", "top"}
        escaped = next(f for f in plan.frames if f.via_return)
        assert escaped.function == "top"
        # The caller's own expansion skips the site covered by the frame.
        assert plan.skip_sites.get(escaped.fid), plan.skip_sites

    def test_call_entered_plan(self):
        pdg, candidate = candidate_of(ENTERING)
        plan = build_frame_plan([candidate.path])
        functions = {f.function for f in plan.frames}
        assert functions == {"use", "top"}
        callee_frame = next(f for f in plan.frames
                            if f.function == "use")
        assert not callee_frame.via_return
        caller = callee_frame.parent
        assert caller is not None
        assert plan.skip_sites.get(caller.fid), plan.skip_sites

    def test_root_only_plan_has_no_skips(self):
        pdg, candidate = candidate_of("""
        fun f(a) {
          p = null;
          if (a > 3) { deref(p); }
          return 0;
        }
        """)
        plan = build_frame_plan([candidate.path])
        assert len(plan.frames) == 1
        assert plan.skip_sites == {}


class TestBoundaryConstraints:
    def test_escape_binds_params_and_receiver(self):
        pdg, candidate = candidate_of(ESCAPING)
        transformer = ConditionTransformer(pdg)
        plan = build_frame_plan([candidate.path])
        escaped = next(f for f in plan.frames if f.via_return)
        constraints = frame_boundary_constraints(transformer, escaped)
        texts = [repr(c) for c in constraints]
        # Receiver in the caller equals the callee's return value.
        assert any("top::r" in t and "make::%ret" in t for t in texts)

    def test_call_entry_binds_actuals(self):
        pdg, candidate = candidate_of(ENTERING)
        transformer = ConditionTransformer(pdg)
        plan = build_frame_plan([candidate.path])
        callee_frame = next(f for f in plan.frames if f.function == "use")
        constraints = frame_boundary_constraints(transformer, callee_frame)
        texts = " ".join(repr(c) for c in constraints)
        # The callee's params bind to the caller's actuals (q and a).
        assert "use::p" in texts and "top::q" in texts
        assert "use::a" in texts and "top::a" in texts

    def test_root_frame_has_no_bindings(self):
        pdg, candidate = candidate_of(ESCAPING)
        transformer = ConditionTransformer(pdg)
        root = candidate.path.steps[0].frame
        assert frame_boundary_constraints(transformer, root) == []


class TestAssembly:
    def test_every_requirement_lands_in_its_frame(self):
        pdg, candidate = candidate_of(ENTERING)
        transformer = ConditionTransformer(pdg)
        the_slice = compute_slice(pdg, [candidate.path])
        needed = {fn: transformer.needed_key(the_slice, fn)
                  for fn in the_slice.needed}

        def instance(fn, skip):
            return transformer.template(
                fn, needed.get(fn, frozenset())).constraints

        constraints = assemble_condition(transformer, [candidate.path],
                                         the_slice, instance)
        texts = " ".join(repr(c) for c in constraints)
        # The guard requirement targets the callee frame's instance of
        # use::%t (a > 9 evaluated inside use).
        callee_frame = next(f for f in candidate.path.frames()
                            if f.function == "use")
        assert f"use::" in texts and frame_suffix(callee_frame) in texts

    def test_suffix_format(self):
        pdg, candidate = candidate_of(ESCAPING)
        root = candidate.path.steps[0].frame
        assert frame_suffix(root) == f"#f{root.fid}"
