"""The SliceCache stats contract: atomic snapshots under concurrency.

``SliceCache.stats()`` takes every counter in one locked read, so the
``hits + misses == lookups`` invariant must hold in *every* snapshot a
reader takes, even while worker threads are hammering the cache — a
torn read (counters taken under separate lock acquisitions) would
violate it intermittently.
"""

import random
import threading

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.exec import CacheStats, SliceCache
from repro.fusion import prepare_pdg
from repro.sparse.engine import collect_candidates


def make_workload(seed=0):
    spec = SubjectSpec("cache-stats", seed=seed, num_functions=6,
                       layers=3, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    pdg = prepare_pdg(generate_subject(spec).program)
    candidates = collect_candidates(pdg, NullDereferenceChecker())
    assert candidates
    return pdg, candidates


class TestSnapshot:
    def test_stats_fields_and_invariant(self):
        pdg, candidates = make_workload()
        cache = SliceCache(capacity=2)
        for candidate in candidates * 2:
            cache.get(pdg, [candidate.path])
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert stats.hits + stats.misses == stats.lookups
        assert stats.lookups == 2 * len(candidates)
        assert stats.size <= 2
        assert stats.capacity == 2
        assert stats.evictions >= 0

    def test_disabled_cache_counts_lookups(self):
        pdg, candidates = make_workload()
        cache = SliceCache(capacity=0)
        for candidate in candidates:
            cache.get(pdg, [candidate.path])
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == stats.lookups == len(candidates)
        assert stats.size == 0

    def test_counters_tuple_still_matches(self):
        pdg, candidates = make_workload()
        cache = SliceCache(capacity=None)
        for candidate in candidates:
            cache.get(pdg, [candidate.path])
        stats = cache.stats()
        assert cache.counters() == (stats.hits, stats.misses,
                                    stats.evictions)


class TestConcurrentHammer:
    def test_invariant_holds_in_every_snapshot(self):
        """Regression: 8 writer threads + a snapshot reader; every
        snapshot must satisfy hits + misses == lookups, and the final
        totals must account for every get()."""
        pdg, candidates = make_workload()
        cache = SliceCache(capacity=2)  # tiny: force constant eviction
        rounds_per_thread = 60
        threads = 8
        stop = threading.Event()
        torn: list[CacheStats] = []

        def reader():
            while not stop.is_set():
                stats = cache.stats()
                if stats.hits + stats.misses != stats.lookups:
                    torn.append(stats)

        def writer(seed):
            rng = random.Random(seed)
            for _ in range(rounds_per_thread):
                candidate = rng.choice(candidates)
                cache.get(pdg, [candidate.path])

        watcher = threading.Thread(target=reader)
        watcher.start()
        workers = [threading.Thread(target=writer, args=(i,))
                   for i in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        watcher.join()

        assert torn == []
        final = cache.stats()
        assert final.lookups == threads * rounds_per_thread
        assert final.hits + final.misses == final.lookups
        assert final.size <= 2
