"""Interpreter tests: concrete semantics, witness replay, and the
differential property against the SMT translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers import NullDereferenceChecker, cwe402_checker
from repro.fusion import (ConditionTransformer, FusionConfig, FusionEngine,
                          GraphSolverConfig, prepare_pdg)
from repro.lang import LoweringConfig, compile_source
from repro.lang.interp import InterpError, Interpreter, Value
from repro.smt import SmtSolver, SmtStatus


def interp(src, fn="f", args=(), **kwargs):
    program = compile_source(src, LoweringConfig(**kwargs)) \
        if kwargs else compile_source(src)
    return Interpreter(program).run(fn, args)


class TestBasicExecution:
    def test_arithmetic(self):
        result = interp("fun f(a, b) { c = a * 2 + b; return c; }",
                        args=(10, 5))
        assert result.return_value.bits == 25

    def test_wraparound(self):
        result = interp("fun f(a) { return a + 200; }", args=(100,))
        assert result.return_value.bits == (300 % 256)

    def test_branching(self):
        src = "fun f(a) { x = 0; if (a > 5) { x = 1; } return x; }"
        assert interp(src, args=(9,)).return_value.bits == 1
        assert interp(src, args=(3,)).return_value.bits == 0

    def test_early_return(self):
        src = """
        fun f(a) {
          if (a > 5) { return 100; }
          return 7;
        }
        """
        assert interp(src, args=(9,)).return_value.bits == 100
        assert interp(src, args=(1,)).return_value.bits == 7

    def test_while_loop_executes_within_bound(self):
        src = """
        fun f(n) {
          i = 0;
          while (i < n) { i = i + 1; }
          return i;
        }
        """
        # Unrolled 3 times: inputs <= 3 compute exactly.
        assert interp(src, args=(3,), loop_unroll=3,
                      width=8).return_value.bits == 3

    def test_calls(self):
        src = """
        fun double(x) { return x * 2; }
        fun f(a) {
          b = double(a);
          c = double(b);
          return c;
        }
        """
        assert interp(src, args=(3,)).return_value.bits == 12

    def test_signed_comparison(self):
        # 200 is -56 signed: less than 5.
        assert interp("fun f(a) { return a < 5; }",
                      args=(200,)).return_value.bits == 1

    def test_division_by_zero_semantics(self):
        assert interp("fun f(a) { return a / 0; }",
                      args=(9,)).return_value.bits == 255
        assert interp("fun f(a) { return a % 0; }",
                      args=(9,)).return_value.bits == 9

    def test_missing_function(self):
        program = compile_source("fun f() { return 0; }")
        with pytest.raises(InterpError):
            Interpreter(program).run("g")

    def test_wrong_arity(self):
        program = compile_source("fun f(a) { return a; }")
        with pytest.raises(InterpError):
            Interpreter(program).run("f", ())


class TestProvenance:
    def test_null_reaches_sink(self):
        result = interp("""
        fun f() {
          p = null;
          deref(p);
          return 0;
        }
        """)
        [event] = result.events_for("deref")
        assert event.passed_null

    def test_null_killed_by_arithmetic(self):
        result = interp("""
        fun f() {
          p = null;
          q = p + 1;
          deref(q);
          return 0;
        }
        """)
        [event] = result.events_for("deref")
        assert not event.passed_null

    def test_taint_survives_arithmetic(self):
        result = interp("""
        fun f() {
          t = getpass();
          u = t * 3 + 1;
          sendmsg(u);
          return 0;
        }
        """)
        [event] = result.events_for("sendmsg")
        assert event.passed_taint("getpass")

    def test_sanitizer_strips_taint(self):
        result = interp("""
        fun f() {
          t = gets();
          u = sanitize_path(t);
          fopen(u);
          return 0;
        }
        """)
        [event] = result.events_for("fopen")
        assert not event.passed_taint("gets")

    def test_custom_extern_model(self):
        program = compile_source("fun f() { x = magic(); return x; }")
        interp_obj = Interpreter(
            program, extern_model=lambda name, args: Value(42))
        assert interp_obj.run("f").return_value.bits == 42


class TestWitnessReplay:
    """The solver's model, fed back through the interpreter, must drive
    the tracked value into the sink — end-to-end confirmation of every
    feasible report."""

    SRC = """
    fun bar(x) {
      y = x * 2;
      z = y;
      return z;
    }
    fun entry(a, b) {
      p = null;
      c = bar(a);
      d = bar(b);
      if (c < d) {
        deref(p);
      }
      return 0;
    }
    """

    def test_replayed_witness_triggers_the_bug(self):
        program = compile_source(self.SRC)
        pdg = prepare_pdg(program)
        config = FusionConfig(solver=GraphSolverConfig(want_model=True))
        result = FusionEngine(pdg, config).analyze(NullDereferenceChecker())
        [report] = result.bugs
        assert report.witness

        # Root-frame parameter values from the model.
        fn = program.functions["entry"]
        args = [report.witness.get(f"entry::{p.name}#f0", 0)
                for p in fn.params]
        execution = Interpreter(program).run("entry", args)
        deref_events = execution.events_for("deref")
        assert deref_events and deref_events[0].passed_null

    def test_taint_witness_replay(self):
        src = """
        fun entry(k) {
          s = getpass();
          if (k > 40) {
            sendmsg(s);
          }
          return 0;
        }
        """
        program = compile_source(src)
        pdg = prepare_pdg(program)
        config = FusionConfig(solver=GraphSolverConfig(want_model=True))
        result = FusionEngine(pdg, config).analyze(cwe402_checker())
        [report] = result.bugs
        k = report.witness.get("entry::k#f0", 0)
        execution = Interpreter(program).run("entry", [k])
        assert any(e.passed_taint("getpass")
                   for e in execution.events_for("sendmsg"))


class TestDifferentialAgainstSmt:
    """The interpreter and the SMT translation are independent semantics
    for the same IR; on extern-free programs they must agree exactly."""

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255),
           seed=st.integers(0, 3))
    def test_function_value_agrees(self, a, b, seed):
        bodies = [
            "c = a * 3 + b; d = c << 1; return d - a;",
            "c = a & b; if (a > b) { c = a | b; } return c + 1;",
            "c = 0; if (a < 10) { c = a * a; } else { c = b; } return c;",
            "c = a / (b | 1); return c % 13;",
        ]
        src = f"fun f(a, b) {{ {bodies[seed]} }}"
        program = compile_source(src)
        concrete = Interpreter(program).run("f", (a, b)).return_value.bits

        pdg = prepare_pdg(program)
        transformer = ConditionTransformer(pdg)
        mgr = transformer.manager
        needed = frozenset(v.index for v in pdg.function_vertices("f"))
        template = transformer.template("f", needed)
        fn = program.functions["f"]
        constraints = list(template.constraints)
        for param, value in zip(fn.params, (a, b)):
            constraints.append(mgr.eq(
                transformer.var_term("f", param),
                mgr.bv_const(value, program.width)))
        result = SmtSolver(mgr).check(constraints, want_model=True)
        assert result.status is SmtStatus.SAT
        ret = pdg.return_vertex("f")
        ret_term = transformer.var_term("f", ret.var)
        model_value = result.model.get(ret_term)
        assert model_value == concrete, src
