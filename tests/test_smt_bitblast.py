"""Unit and property tests for the bit-blaster.

The oracle is the concrete evaluator: a Boolean term is valid iff its
negation bit-blasts to an UNSAT CNF, and any SAT model read back through
``model_value`` must satisfy the term under ``evaluate``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import BitBlaster, SatStatus, TermManager, evaluate
from strategies import bool_terms, make_manager


@pytest.fixture
def mgr():
    return TermManager()


def is_valid(mgr, term):
    blaster = BitBlaster()
    blaster.assert_true(mgr.not_(term))
    return blaster.solve().status is SatStatus.UNSAT


def is_sat(mgr, term):
    blaster = BitBlaster()
    blaster.assert_true(term)
    result = blaster.solve()
    if result.status is SatStatus.SAT:
        return True, blaster, result
    return False, blaster, result


class TestBooleanLayer:
    def test_tautology(self, mgr):
        p = mgr.bool_var("p")
        assert is_valid(mgr, mgr.or_(p, mgr.not_(p)))

    def test_contradiction(self, mgr):
        p = mgr.bool_var("p")
        sat, _, _ = is_sat(mgr, mgr.and_(p, mgr.not_(p)))
        assert not sat

    def test_demorgan(self, mgr):
        p, q = mgr.bool_var("p"), mgr.bool_var("q")
        lhs = mgr.not_(mgr.and_(p, q))
        rhs = mgr.or_(mgr.not_(p), mgr.not_(q))
        assert is_valid(mgr, mgr.eq(lhs, rhs))

    def test_implies_definition(self, mgr):
        p, q = mgr.bool_var("p"), mgr.bool_var("q")
        assert is_valid(mgr, mgr.eq(mgr.implies(p, q),
                                    mgr.or_(mgr.not_(p), q)))


class TestArithmeticCircuits:
    def test_add_commutes(self, mgr):
        x, y = mgr.bv_var("x", 6), mgr.bv_var("y", 6)
        assert is_valid(mgr, mgr.eq(mgr.bvadd(x, y), mgr.bvadd(y, x)))

    def test_add_concrete(self, mgr):
        x = mgr.bv_var("x", 8)
        constraint = mgr.eq(mgr.bvadd(x, mgr.bv_const(1, 8)),
                            mgr.bv_const(0, 8))
        sat, blaster, result = is_sat(mgr, constraint)
        assert sat
        assert blaster.model_value(x, result.model) == 255

    def test_sub_inverts_add(self, mgr):
        x, y = mgr.bv_var("x", 6), mgr.bv_var("y", 6)
        assert is_valid(mgr, mgr.eq(mgr.bvsub(mgr.bvadd(x, y), y), x))

    def test_mul_concrete(self, mgr):
        x = mgr.bv_var("x", 8)
        constraint = mgr.eq(mgr.bvmul(x, mgr.bv_const(3, 8)),
                            mgr.bv_const(15, 8))
        sat, blaster, result = is_sat(mgr, constraint)
        assert sat
        assert (blaster.model_value(x, result.model) * 3) % 256 == 15

    def test_mul_by_two_is_shift(self, mgr):
        x = mgr.bv_var("x", 6)
        two = mgr.bv_const(2, 6)
        one = mgr.bv_const(1, 6)
        assert is_valid(mgr, mgr.eq(mgr.bvmul(x, two), mgr.bvshl(x, one)))

    def test_neg_is_zero_minus(self, mgr):
        x = mgr.bv_var("x", 6)
        assert is_valid(mgr, mgr.eq(mgr.bvneg(x),
                                    mgr.bvsub(mgr.bv_const(0, 6), x)))

    def test_udiv_identity(self, mgr):
        x, y = mgr.bv_var("x", 4), mgr.bv_var("y", 4)
        q = mgr.bvudiv(x, y)
        r = mgr.bvurem(x, y)
        nonzero = mgr.not_(mgr.eq(y, mgr.bv_const(0, 4)))
        identity = mgr.eq(mgr.bvadd(mgr.bvmul(q, y), r), x)
        assert is_valid(mgr, mgr.implies(nonzero, identity))

    def test_udiv_by_zero_all_ones(self, mgr):
        x = mgr.bv_var("x", 4)
        expr = mgr.eq(mgr.bvudiv(x, mgr.bv_const(0, 4)),
                      mgr.bv_const(15, 4))
        assert is_valid(mgr, expr)


class TestComparisons:
    def test_ult_antisymmetric(self, mgr):
        x, y = mgr.bv_var("x", 6), mgr.bv_var("y", 6)
        assert is_valid(mgr, mgr.not_(mgr.and_(mgr.ult(x, y), mgr.ult(y, x))))

    def test_slt_signed_boundary(self, mgr):
        x = mgr.bv_var("x", 8)
        # x = 128 (== -128 signed) is less than 0 signed but not unsigned.
        c128 = mgr.bv_const(128, 8)
        zero = mgr.bv_const(0, 8)
        assert is_valid(mgr, mgr.slt(c128, zero))
        sat, _, _ = is_sat(mgr, mgr.ult(c128, zero))
        assert not sat

    def test_ule_total(self, mgr):
        x, y = mgr.bv_var("x", 6), mgr.bv_var("y", 6)
        assert is_valid(mgr, mgr.or_(mgr.ule(x, y), mgr.ule(y, x)))


class TestShifts:
    def test_shl_overflow_zeroes(self, mgr):
        x = mgr.bv_var("x", 4)
        amount = mgr.bv_const(4, 4)
        assert is_valid(mgr, mgr.eq(mgr.bvshl(x, amount),
                                    mgr.bv_const(0, 4)))

    def test_lshr_then_shl_masks_low_bits(self, mgr):
        x = mgr.bv_var("x", 4)
        one = mgr.bv_const(1, 4)
        round_trip = mgr.bvshl(mgr.bvlshr(x, one), one)
        masked = mgr.bvand(x, mgr.bv_const(0b1110, 4))
        assert is_valid(mgr, mgr.eq(round_trip, masked))


class TestModelExtraction:
    def test_model_value_bool(self, mgr):
        p = mgr.bool_var("p")
        sat, blaster, result = is_sat(mgr, p)
        assert sat
        assert blaster.model_value(p, result.model) == 1

    def test_model_of_compound_term(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = mgr.bvadd(x, x)
        constraint = mgr.eq(expr, mgr.bv_const(10, 8))
        sat, blaster, result = is_sat(mgr, constraint)
        assert sat
        assert blaster.model_value(expr, result.model) == 10

    def test_assert_non_bool_rejected(self, mgr):
        blaster = BitBlaster()
        with pytest.raises(TypeError):
            blaster.assert_true(mgr.bv_var("x", 4))


class TestAgainstEvaluator:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_sat_models_satisfy_term(self, data):
        mgr, bv_vars, bool_vars = make_manager()
        term = data.draw(bool_terms(mgr, bv_vars, bool_vars))
        blaster = BitBlaster()
        blaster.assert_true(term)
        result = blaster.solve(conflict_limit=50_000)
        if result.status is SatStatus.SAT:
            env = {v: blaster.model_value(v, result.model)
                   for v in bv_vars + bool_vars}
            assert evaluate(term, env) == 1

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_unsat_agrees_with_concrete_witness(self, data):
        """If the evaluator finds a witness, the blaster must say SAT."""
        mgr, bv_vars, bool_vars = make_manager()
        term = data.draw(bool_terms(mgr, bv_vars, bool_vars))
        witness_env = data.draw(st.fixed_dictionaries(
            {v: st.integers(0, 15) for v in bv_vars}
            | {v: st.integers(0, 1) for v in bool_vars}))
        if evaluate(term, witness_env) == 1:
            blaster = BitBlaster()
            blaster.assert_true(term)
            assert blaster.solve(conflict_limit=50_000).status \
                is SatStatus.SAT
