"""Store integrity under corruption and injected I/O faults.

Property (docs/robustness.md): no torn, truncated, bit-flipped or
EIO-failing store entry may ever crash the process or change a verdict.
Every defective read degrades to a counted quarantine/miss, the entry is
moved aside (never silently reused), and a warm re-analysis reproduces
the cold report list byte-for-byte.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.engine import findings_payload
from repro.exec import ArtifactStore, FaultPlan, Telemetry
from repro.fusion import FusionEngine, prepare_pdg
from repro.lang import LoweringConfig, compile_source


def fuzz_source(seed: int) -> str:
    spec = SubjectSpec("integrity-unit", seed=seed, num_functions=4,
                       layers=2, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 0, 1))
    return generate_subject(spec).source


def analyze(source: str, store=None, telemetry=None):
    engine = FusionEngine(prepare_pdg(
        compile_source(source, LoweringConfig())))
    return engine.analyze(NullDereferenceChecker(), store=store,
                          telemetry=telemetry)


def object_files(root: str) -> list[str]:
    out = []
    for dirpath, _dirs, files in os.walk(os.path.join(root, "objects")):
        out.extend(os.path.join(dirpath, name) for name in files)
    return sorted(out)


def quarantine_files(root: str) -> list[str]:
    quarantine = os.path.join(root, "quarantine")
    if not os.path.isdir(quarantine):
        return []
    return sorted(os.listdir(quarantine))


SOURCE = fuzz_source(7)


# --------------------------------------------------------------------- #
# Hypothesis: arbitrary truncation / bit flips
# --------------------------------------------------------------------- #


class TestCorruptionProperty:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_any_corruption_degrades_to_counted_quarantine(
            self, tmp_path_factory, data):
        tmp = str(tmp_path_factory.mktemp("store"))
        store = ArtifactStore(tmp, label="t")
        cold = analyze(SOURCE, store=store)
        assert cold.candidates > 0
        cold_findings = json.dumps(findings_payload(cold))

        files = object_files(tmp)
        assert files
        victim = files[data.draw(
            st.integers(min_value=0, max_value=len(files) - 1),
            label="victim")]
        with open(victim, "rb") as handle:
            body = handle.read()
        if data.draw(st.booleans(), label="truncate"):
            cut = data.draw(
                st.integers(min_value=0, max_value=len(body) - 1),
                label="cut")
            mangled = body[:cut]
        else:
            position = data.draw(
                st.integers(min_value=0, max_value=len(body) - 1),
                label="bit_position")
            bit = 1 << data.draw(st.integers(min_value=0, max_value=7),
                                 label="bit")
            mangled = bytearray(body)
            mangled[position] ^= bit
            mangled = bytes(mangled)
        if mangled == body:
            return  # XOR with 0 shift can be the identity on repeat draws
        with open(victim, "wb") as handle:
            handle.write(mangled)

        telemetry = Telemetry()
        warm = analyze(SOURCE, store=store, telemetry=telemetry)
        # Never a crash, never a changed verdict.
        assert json.dumps(findings_payload(warm)) == cold_findings
        # The defective entry was counted and moved aside, never reused.
        assert store.integrity["corrupt_entries"] == 1
        assert store.integrity["quarantined"] == 1
        assert len(quarantine_files(tmp)) == 1
        section = telemetry.as_dict()["store"]
        assert section["corrupt_entries"] == 1
        assert section["quarantined"] == 1
        # The rewrite healed the store: the next run replays fully.
        healed = analyze(SOURCE, store=store)
        assert healed.smt_queries == 0


# --------------------------------------------------------------------- #
# Injected I/O faults (FaultPlan store sites)
# --------------------------------------------------------------------- #


class TestInjectedStoreFaults:
    def test_read_eio_is_a_counted_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path), label="t")
        cold = analyze(SOURCE, store=store)
        faulted = ArtifactStore(
            str(tmp_path), label="t",
            fault_plan=FaultPlan(store_read_eio=frozenset({0, 2})))
        telemetry = Telemetry()
        warm = analyze(SOURCE, store=faulted, telemetry=telemetry)
        assert findings_payload(warm) == findings_payload(cold)
        assert faulted.integrity["read_errors"] == 2
        assert telemetry.as_dict()["store"]["io_errors"] == 2
        # EIO is transient, not corruption: nothing is quarantined.
        assert faulted.integrity["quarantined"] == 0

    def test_write_eio_degrades_to_uncached(self, tmp_path):
        store = ArtifactStore(
            str(tmp_path), label="t",
            fault_plan=FaultPlan(store_write_eio=frozenset({0})))
        cold = analyze(SOURCE, store=store)
        assert cold.failure is None
        assert store.integrity["write_errors"] >= 1
        # The dropped entry misses on the next run; the rest replay.
        warm = analyze(SOURCE, store=store)
        assert findings_payload(warm) == findings_payload(cold)

    def test_torn_and_flipped_writes_quarantine_on_read(self, tmp_path):
        store = ArtifactStore(
            str(tmp_path), label="t",
            fault_plan=FaultPlan(torn_write_on=frozenset({0}),
                                 bit_flip_on=frozenset({1})))
        cold = analyze(SOURCE, store=store)
        clean = ArtifactStore(str(tmp_path), label="t")
        warm = analyze(SOURCE, store=clean)
        assert findings_payload(warm) == findings_payload(cold)
        assert clean.integrity["corrupt_entries"] >= 1
        assert quarantine_files(str(tmp_path))

    def test_seeded_plans_cover_store_sites(self):
        plan = FaultPlan.seeded(9, num_queries=0, store_ops=8)
        assert plan.store_read_eio and plan.torn_write_on
        assert not (plan.torn_write_on & plan.bit_flip_on)
        spec = plan.describe()
        rebuilt = FaultPlan.parse(spec)
        assert rebuilt == plan
