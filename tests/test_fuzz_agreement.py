"""Differential fuzzing: all path-sensitive engines agree on random
programs.

This is the repository's strongest integration property: for seeded
random subjects, Fusion (Algorithms 5+6), unoptimized Fusion (Algorithm 4),
and conventional Pinpoint (Algorithm 2) must report exactly the same bugs
— the paper's "the bugs they report are the same" — and those bugs must
match the generator's path-feasibility labels.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import PinpointEngine
from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker, cwe23_checker
from repro.fusion import (FusionConfig, FusionEngine, GraphSolverConfig,
                          prepare_pdg)


def bug_keys(result):
    return {(r.source.index, r.sink.index) for r in result.bugs}


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_engines_agree_on_random_programs(seed):
    spec = SubjectSpec("fuzz", seed=seed, num_functions=10, layers=3,
                       avg_stmts=6, call_fanout=2, null_bugs=(1, 1, 1),
                       taint23_bugs=(1, 0, 1))
    subject = generate_subject(spec)
    pdg = prepare_pdg(subject.program)
    checker = NullDereferenceChecker()

    fusion = FusionEngine(pdg).analyze(checker)
    unopt = FusionEngine(pdg, FusionConfig(
        solver=GraphSolverConfig(optimized=False))).analyze(checker)
    pinpoint = PinpointEngine(pdg).analyze(checker)

    assert bug_keys(fusion) == bug_keys(unopt) == bug_keys(pinpoint)

    # Verdicts match the injected labels exactly.
    reported = {r.source.function for r in fusion.bugs}
    expected = {b.source_function for b in subject.truth_for("null-deref")
                if b.path_feasible}
    assert reported == expected


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_taint_verdicts_match_labels(seed):
    spec = SubjectSpec("fuzz-taint", seed=seed, num_functions=8, layers=3,
                       avg_stmts=6, call_fanout=2, null_bugs=(0, 0, 0),
                       taint23_bugs=(1, 1, 1), taint402_bugs=(1, 0, 1))
    subject = generate_subject(spec)
    pdg = prepare_pdg(subject.program)
    for checker, name in ((cwe23_checker(), "cwe-23"),):
        result = FusionEngine(pdg).analyze(checker)
        reported = {r.source.function for r in result.bugs}
        expected = {b.source_function for b in subject.truth_for(name)
                    if b.path_feasible}
        assert reported == expected


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_no_engine_crashes_on_random_programs(seed):
    """Robustness: bigger random programs run to completion without
    resource failures under generous limits."""
    spec = SubjectSpec("fuzz-big", seed=seed, num_functions=16, layers=4,
                       avg_stmts=9, call_fanout=2, null_bugs=(2, 1, 1),
                       loop_density=0.2)
    subject = generate_subject(spec)
    subject.program.validate()
    pdg = prepare_pdg(subject.program)
    result = FusionEngine(pdg).analyze(NullDereferenceChecker())
    assert result.failure is None
