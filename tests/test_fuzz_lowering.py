"""Fuzzing the front end: random structured programs, checked two ways.

A miniature AST fuzzer (independent of the benchmark generator) produces
random straight-line/branching/looping functions; each program must
(a) lower to valid SSA, (b) build a well-formed PDG, and (c) agree
between the concrete interpreter and the SMT translation of the lowered
IR on random inputs — the strongest cross-validation of the whole
front-end + transformation chain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion import ConditionTransformer, prepare_pdg
from repro.lang import Interpreter, LoweringConfig, compile_source
from repro.pdg import validate_pdg
from repro.smt import SmtSolver, SmtStatus


class ProgramFuzzer:
    """Deterministic random program texts from a hypothesis-drawn seed."""

    def __init__(self, rng) -> None:
        self.rng = rng
        self.counter = 0

    def fresh(self) -> str:
        self.counter += 1
        return f"v{self.counter}"

    def expr(self, vars_, depth=0) -> str:
        rng = self.rng
        if depth > 2 or rng.random() < 0.3:
            if rng.random() < 0.5 and vars_:
                return rng.choice(vars_)
            return str(rng.randint(0, 30))
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<<"])
        left = self.expr(vars_, depth + 1)
        right = self.expr(vars_, depth + 1)
        if op == "<<":
            right = str(rng.randint(0, 3))
        return f"({left} {op} {right})"

    def cond(self, vars_) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"{self.expr(vars_, 2)} {op} {self.expr(vars_, 2)}"

    def block(self, vars_, depth, budget) -> list[str]:
        rng = self.rng
        lines: list[str] = []
        local_vars = list(vars_)
        for _ in range(budget):
            roll = rng.random()
            if roll < 0.2 and depth < 2:
                inner = self.block(local_vars, depth + 1, rng.randint(1, 3))
                pad = "  " * (depth + 1)
                lines.append(f"{pad}if ({self.cond(local_vars)}) {{")
                lines.extend(inner)
                if rng.random() < 0.4:
                    lines.append(f"{pad}}} else {{")
                    lines.extend(self.block(local_vars, depth + 1,
                                            rng.randint(1, 2)))
                lines.append(f"{pad}}}")
            elif roll < 0.3 and depth < 1:
                v = self.fresh()
                pad = "  " * (depth + 1)
                lines.append(f"{pad}{v} = 0;")
                bound = rng.choice(local_vars) if local_vars else "3"
                lines.append(f"{pad}while ({v} < {bound}) {{")
                lines.append(f"{pad}  {v} = {v} + "
                             f"{rng.randint(1, 7)};")
                lines.append(f"{pad}}}")
                local_vars.append(v)
            else:
                v = self.fresh()
                pad = "  " * (depth + 1)
                lines.append(f"{pad}{v} = {self.expr(local_vars)};")
                local_vars.append(v)
        # Record block-local variables for the caller via mutation of the
        # outer list only at depth 0 (branch locals are scoped away).
        if depth == 0:
            vars_[:] = local_vars
        return lines

    def function(self) -> str:
        vars_ = ["a", "b"]
        body = self.block(vars_, 0, self.rng.randint(2, 6))
        ret = self.rng.choice(vars_)
        return "fun f(a, b) {\n" + "\n".join(body) + \
            f"\n  return {ret};\n}}"


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**9), a=st.integers(0, 255),
       b=st.integers(0, 255))
def test_fuzzed_program_full_pipeline(seed, a, b):
    import random

    src = ProgramFuzzer(random.Random(seed)).function()
    program = compile_source(src, LoweringConfig(loop_unroll=2, width=8))
    program.validate()

    pdg = prepare_pdg(program)
    report = validate_pdg(pdg)
    assert report.ok, (report.errors, src)

    # The post-dominance control-dependence computation agrees with the
    # structural nesting on every fuzzed shape.
    from repro.cfg import (ControlFlowGraph, statement_control_deps,
                           structural_control_deps)
    fn = program.functions["f"]
    cfg = ControlFlowGraph(fn)
    from_cfg = statement_control_deps(cfg)
    from_structure = structural_control_deps(fn.body)
    for stmt in fn.statements():
        assert from_cfg[id(stmt)] == from_structure[id(stmt)], src

    # Interpreter semantics...
    concrete = Interpreter(program).run("f", (a, b)).return_value.bits

    # ...must match the SMT translation with pinned parameters.
    transformer = ConditionTransformer(pdg)
    mgr = transformer.manager
    needed = frozenset(v.index for v in pdg.function_vertices("f"))
    template = transformer.template("f", needed)
    fn = program.functions["f"]
    constraints = list(template.constraints)
    for param, value in zip(fn.params, (a, b)):
        constraints.append(mgr.eq(transformer.var_term("f", param),
                                  mgr.bv_const(value, 8)))
    result = SmtSolver(mgr).check(constraints, want_model=True)
    assert result.status is SmtStatus.SAT, src
    ret = pdg.return_vertex("f")
    ret_term = transformer.var_term("f", ret.var)
    assert result.model.get(ret_term) == concrete, src
