"""End-to-end engine tests: Fusion, Pinpoint (+variants), Infer.

The paper's key functional claim (Section 5.1): "Since they work with the
same precision and the only difference is whether they employ the fused
design, the bugs they report are the same."  These tests check that
agreement on a battery of programs, plus the qualitative differences
(Infer's false positives, the variants' overhead).
"""

import pytest

from repro.baselines import InferEngine, PinpointEngine, make_pinpoint
from repro.checkers import (NullDereferenceChecker, cwe23_checker,
                            cwe402_checker)
from repro.fusion import (FusionConfig, FusionEngine, GraphSolverConfig,
                          prepare_pdg)
from repro.lang import compile_source

PROGRAMS = {
    "straight": """
        fun f() {
          p = null;
          deref(p);
          return 0;
        }
    """,
    "feasible_guard": """
        fun f(a) {
          p = null;
          if (a > 20) { deref(p); }
          return 0;
        }
    """,
    "infeasible_guard": """
        fun f(a) {
          p = null;
          b = a < a;
          if (b) { deref(p); }
          return 0;
        }
    """,
    "figure1": """
        fun bar(x) {
          y = x * 2;
          z = y;
          return z;
        }
        fun foo(a, b) {
          p = null;
          c = bar(a);
          d = bar(b);
          if (c < d) { deref(p); }
          return 0;
        }
    """,
    "interproc_null_return": """
        fun make() {
          p = null;
          return p;
        }
        fun f() {
          q = make();
          deref(q);
          return 0;
        }
    """,
    "contradictory_guards": """
        fun f(a) {
          p = null;
          if (a > 10) {
            if (a < 5) { deref(p); }
          }
          return 0;
        }
    """,
    "const_propagation_kills": """
        fun f() {
          p = null;
          a = 1;
          b = a > 5;
          if (b) { deref(p); }
          return 0;
        }
    """,
}

#: Expected number of *feasible* null-deref bugs per program.
EXPECTED_BUGS = {
    "straight": 1,
    "feasible_guard": 1,
    "infeasible_guard": 0,
    "figure1": 1,
    "interproc_null_return": 1,
    "contradictory_guards": 0,
    "const_propagation_kills": 0,
}


def bug_keys(result):
    return {(r.source.index, r.sink.index) for r in result.bugs}


@pytest.fixture(params=sorted(PROGRAMS))
def program_case(request):
    pdg = prepare_pdg(compile_source(PROGRAMS[request.param]))
    return request.param, pdg


class TestFusionVerdicts:
    def test_expected_bug_counts(self, program_case):
        name, pdg = program_case
        result = FusionEngine(pdg).analyze(NullDereferenceChecker())
        assert result.failure is None
        assert len(result.bugs) == EXPECTED_BUGS[name], name


class TestEngineAgreement:
    def test_fusion_matches_pinpoint(self, program_case):
        name, pdg = program_case
        fusion = FusionEngine(pdg).analyze(NullDereferenceChecker())
        pinpoint = PinpointEngine(pdg).analyze(NullDereferenceChecker())
        assert bug_keys(fusion) == bug_keys(pinpoint), name

    def test_unoptimized_fusion_matches_optimized(self, program_case):
        name, pdg = program_case
        optimized = FusionEngine(pdg).analyze(NullDereferenceChecker())
        config = FusionConfig(solver=GraphSolverConfig(optimized=False))
        unoptimized = FusionEngine(pdg, config).analyze(
            NullDereferenceChecker())
        assert bug_keys(optimized) == bug_keys(unoptimized), name

    def test_quickpaths_do_not_change_verdicts(self, program_case):
        name, pdg = program_case
        with_qp = FusionEngine(pdg).analyze(NullDereferenceChecker())
        config = FusionConfig(
            solver=GraphSolverConfig(use_quickpaths=False))
        without = FusionEngine(pdg, config).analyze(NullDereferenceChecker())
        assert bug_keys(with_qp) == bug_keys(without), name

    @pytest.mark.parametrize("variant", ["lfs", "hfs", "ar"])
    def test_variants_match_plain_pinpoint(self, variant):
        pdg = prepare_pdg(compile_source(PROGRAMS["figure1"]))
        plain = PinpointEngine(pdg).analyze(NullDereferenceChecker())
        varied = make_pinpoint(pdg, variant).analyze(NullDereferenceChecker())
        assert bug_keys(plain) == bug_keys(varied)


class TestInferProfile:
    def test_infer_reports_infeasible_paths(self):
        pdg = prepare_pdg(compile_source(PROGRAMS["infeasible_guard"]))
        infer = InferEngine(pdg).analyze(NullDereferenceChecker())
        fusion = FusionEngine(pdg).analyze(NullDereferenceChecker())
        assert len(infer.bugs) == 1      # false positive
        assert len(fusion.bugs) == 0     # filtered by path sensitivity

    def test_infer_misses_deep_flows(self):
        # A null that travels five call levels: beyond Infer's hop bound.
        src = ["fun l0() { p = null; return p; }"]
        for i in range(1, 6):
            src.append(f"fun l{i}() {{ q = l{i-1}(); return q; }}")
        src.append("fun top() { r = l5(); deref(r); return 0; }")
        pdg = prepare_pdg(compile_source("\n".join(src)))
        infer = InferEngine(pdg).analyze(NullDereferenceChecker())
        fusion = FusionEngine(pdg).analyze(NullDereferenceChecker())
        assert len(fusion.bugs) == 1
        assert len(infer.bugs) == 0

    def test_infer_runs_no_smt_queries(self):
        pdg = prepare_pdg(compile_source(PROGRAMS["figure1"]))
        result = InferEngine(pdg).analyze(NullDereferenceChecker())
        assert result.smt_queries == 0


class TestTaintAnalyses:
    def test_cwe23_feasible(self):
        pdg = prepare_pdg(compile_source("""
        fun f(a) {
          t = gets();
          if (a > 3) { fopen(t); }
          return 0;
        }
        """))
        result = FusionEngine(pdg).analyze(cwe23_checker())
        assert len(result.bugs) == 1

    def test_cwe23_infeasible_guard(self):
        pdg = prepare_pdg(compile_source("""
        fun f(a) {
          t = gets();
          b = a != a;
          if (b) { fopen(t); }
          return 0;
        }
        """))
        result = FusionEngine(pdg).analyze(cwe23_checker())
        assert len(result.bugs) == 0

    def test_cwe402_interprocedural(self):
        pdg = prepare_pdg(compile_source("""
        fun fetch() {
          s = getpass();
          return s;
        }
        fun f() {
          k = fetch();
          send(k);
          return 0;
        }
        """))
        result = FusionEngine(pdg).analyze(cwe402_checker())
        assert len(result.bugs) == 1

    def test_checkers_are_independent(self):
        pdg = prepare_pdg(compile_source("""
        fun f() {
          t = gets();
          fopen(t);
          s = getpass();
          send(s);
          return 0;
        }
        """))
        cwe23 = FusionEngine(pdg).analyze(cwe23_checker())
        cwe402 = FusionEngine(pdg).analyze(cwe402_checker())
        assert len(cwe23.bugs) == 1
        assert len(cwe402.bugs) == 1


class TestResourceAccounting:
    def test_pinpoint_caches_conditions_fusion_does_not(self):
        pdg = prepare_pdg(compile_source(PROGRAMS["figure1"]))
        fusion = FusionEngine(pdg).analyze(NullDereferenceChecker())
        pinpoint = PinpointEngine(pdg).analyze(NullDereferenceChecker())
        assert fusion.condition_memory_units == 0
        assert pinpoint.condition_memory_units > 0

    def test_memory_budget_failure_reported(self):
        from repro.limits import Budget
        from repro.baselines import PinpointConfig

        pdg = prepare_pdg(compile_source(PROGRAMS["figure1"]))
        config = PinpointConfig(budget=Budget(max_memory_units=10))
        result = PinpointEngine(pdg, config).analyze(NullDereferenceChecker())
        assert result.failure == "memory"
