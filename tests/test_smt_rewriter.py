"""Unit and property tests for the local rewriter (LFS tactic)."""

import pytest
from hypothesis import given, settings

from repro.smt import Op, TermManager, evaluate, simplify
from strategies import all_assignments, bool_terms, make_manager


@pytest.fixture
def mgr():
    return TermManager()


class TestConstantFolding:
    def test_arith_folds(self, mgr):
        expr = mgr.bvadd(mgr.bv_const(200, 8), mgr.bv_const(100, 8))
        assert simplify(mgr, expr) is mgr.bv_const(44, 8)

    def test_comparison_folds(self, mgr):
        expr = mgr.slt(mgr.bv_const(255, 8), mgr.bv_const(1, 8))
        assert simplify(mgr, expr) is mgr.true

    def test_nested_folding(self, mgr):
        one = mgr.bv_const(1, 8)
        expr = mgr.eq(mgr.bvadd(one, mgr.bvmul(one, one)), mgr.bv_const(2, 8))
        assert simplify(mgr, expr) is mgr.true


class TestBooleanRules:
    def test_double_negation(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.not_(mgr.not_(p))) is p

    def test_and_absorbs_true_false(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.and_(p, mgr.true)) is p
        assert simplify(mgr, mgr.and_(p, mgr.false)) is mgr.false

    def test_and_contradiction(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.and_(p, mgr.not_(p))) is mgr.false

    def test_or_tautology(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.or_(p, mgr.not_(p))) is mgr.true

    def test_and_dedupes(self, mgr):
        p, q = mgr.bool_var("p"), mgr.bool_var("q")
        result = simplify(mgr, mgr.and_(p, q, p, q, p))
        assert result.op is Op.AND and len(result.args) == 2

    def test_implies_reflexive(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.implies(p, p)) is mgr.true

    def test_eq_with_true_erases(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.eq(p, mgr.true)) is p
        assert simplify(mgr, mgr.eq(mgr.false, p)) is simplify(
            mgr, mgr.not_(p))

    def test_xor_self_cancels(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.xor(p, p)) is mgr.false


class TestIteRules:
    def test_constant_condition(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        assert simplify(mgr, mgr.ite(mgr.true, x, y)) is x
        assert simplify(mgr, mgr.ite(mgr.false, x, y)) is y

    def test_equal_branches(self, mgr):
        p = mgr.bool_var("p")
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.ite(p, x, x)) is x

    def test_bool_ite_to_condition(self, mgr):
        p = mgr.bool_var("p")
        assert simplify(mgr, mgr.ite(p, mgr.true, mgr.false)) is p
        assert simplify(mgr, mgr.ite(p, mgr.false, mgr.true)) is simplify(
            mgr, mgr.not_(p))


class TestBitvectorRules:
    def test_add_zero(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.bvadd(x, mgr.bv_const(0, 8))) is x

    def test_sub_self(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.bvsub(x, x)) is mgr.bv_const(0, 8)

    def test_mul_identities(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.bvmul(x, mgr.bv_const(1, 8))) is x
        assert simplify(mgr, mgr.bvmul(x, mgr.bv_const(0, 8))) \
            is mgr.bv_const(0, 8)

    def test_and_or_identities(self, mgr):
        x = mgr.bv_var("x", 8)
        ones = mgr.bv_const(255, 8)
        zero = mgr.bv_const(0, 8)
        assert simplify(mgr, mgr.bvand(x, ones)) is x
        assert simplify(mgr, mgr.bvand(x, zero)) is zero
        assert simplify(mgr, mgr.bvor(x, zero)) is x
        assert simplify(mgr, mgr.bvor(x, ones)) is ones

    def test_xor_self_zero(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.bvxor(x, x)) is mgr.bv_const(0, 8)

    def test_shift_zero(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.bvshl(x, mgr.bv_const(0, 8))) is x

    def test_irreflexive_comparisons(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.slt(x, x)) is mgr.false
        assert simplify(mgr, mgr.ult(x, x)) is mgr.false
        assert simplify(mgr, mgr.sle(x, x)) is mgr.true

    def test_ult_zero_false(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.ult(x, mgr.bv_const(0, 8))) is mgr.false

    def test_commutative_canonicalisation_merges_terms(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        assert simplify(mgr, mgr.bvadd(x, y)) is simplify(mgr, mgr.bvadd(y, x))


class TestIdempotence:
    def test_simplify_is_idempotent_on_examples(self, mgr):
        p = mgr.bool_var("p")
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        exprs = [
            mgr.and_(p, mgr.not_(mgr.not_(p))),
            mgr.eq(mgr.bvadd(x, mgr.bv_const(0, 8)), mgr.bvmul(y, y)),
            mgr.ite(p, mgr.slt(x, y), mgr.slt(y, x)),
        ]
        for expr in exprs:
            once = simplify(mgr, expr)
            assert simplify(mgr, once) is once


class TestSoundnessProperty:
    @settings(max_examples=150, deadline=None)
    @given(data=__import__("hypothesis").strategies.data())
    def test_simplify_preserves_semantics(self, data):
        mgr, bv_vars, bool_vars = make_manager()
        term = data.draw(bool_terms(mgr, bv_vars, bool_vars))
        simplified = simplify(mgr, term)
        assert simplified.dag_size() <= term.dag_size() + 1
        # Spot-check a handful of assignments rather than the full 2^14.
        for i, env in enumerate(all_assignments(bv_vars, bool_vars)):
            if i % 977 == 0 or i < 4:
                assert evaluate(term, env) == evaluate(simplified, env)
