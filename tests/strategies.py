"""Shared hypothesis strategies for random term generation.

Terms are built over a fixed pool of bit-vector and Boolean variables so
that satisfiability-oriented properties get interesting sharing, and the
width stays small (4 bits) so brute-force enumeration remains a viable
oracle in property tests.
"""

from __future__ import annotations

import itertools

from hypothesis import strategies as st

from repro.smt.terms import Term, TermManager

WIDTH = 4
NUM_BV_VARS = 3
NUM_BOOL_VARS = 2


def make_manager() -> tuple[TermManager, list[Term], list[Term]]:
    manager = TermManager()
    bv_vars = [manager.bv_var(f"x{i}", WIDTH) for i in range(NUM_BV_VARS)]
    bool_vars = [manager.bool_var(f"p{i}") for i in range(NUM_BOOL_VARS)]
    return manager, bv_vars, bool_vars


def bv_terms(manager: TermManager, bv_vars: list[Term],
             bool_strategy) -> st.SearchStrategy[Term]:
    leaves = st.one_of(
        st.sampled_from(bv_vars),
        st.integers(0, (1 << WIDTH) - 1).map(
            lambda v: manager.bv_const(v, WIDTH)),
    )

    def extend(children: st.SearchStrategy[Term]) -> st.SearchStrategy[Term]:
        binops = st.sampled_from([
            manager.bvadd, manager.bvsub, manager.bvmul,
            manager.bvand, manager.bvor, manager.bvxor,
            manager.bvshl, manager.bvlshr,
            manager.bvudiv, manager.bvurem,
        ])
        unops = st.sampled_from([manager.bvneg, manager.bvnot])
        return st.one_of(
            st.tuples(binops, children, children).map(
                lambda t: t[0](t[1], t[2])),
            st.tuples(unops, children).map(lambda t: t[0](t[1])),
            st.tuples(bool_strategy, children, children).map(
                lambda t: manager.ite(t[0], t[1], t[2])),
        )

    return st.recursive(leaves, extend, max_leaves=8)


def bool_terms(manager: TermManager, bv_vars: list[Term],
               bool_vars: list[Term]) -> st.SearchStrategy[Term]:
    # Break the mutual recursion between Boolean and bit-vector terms by
    # seeding the bit-vector strategy with shallow Boolean conditions.
    shallow_bools = st.one_of(
        st.sampled_from(bool_vars),
        st.just(manager.true),
        st.just(manager.false),
    )
    bvs = bv_terms(manager, bv_vars, shallow_bools)

    leaves = st.one_of(
        st.sampled_from(bool_vars),
        st.just(manager.true),
        st.just(manager.false),
        st.tuples(st.sampled_from([
            manager.eq, manager.ult, manager.ule, manager.slt, manager.sle,
        ]), bvs, bvs).map(lambda t: t[0](t[1], t[2])),
    )

    def extend(children: st.SearchStrategy[Term]) -> st.SearchStrategy[Term]:
        return st.one_of(
            st.tuples(children).map(lambda t: manager.not_(t[0])),
            st.tuples(st.sampled_from([
                lambda a, b: manager.and_(a, b),
                lambda a, b: manager.or_(a, b),
                manager.xor, manager.implies, manager.eq,
            ]), children, children).map(lambda t: t[0](t[1], t[2])),
            st.tuples(children, children, children).map(
                lambda t: manager.ite(t[0], t[1], t[2])),
        )

    return st.recursive(leaves, extend, max_leaves=10)


def all_assignments(bv_vars: list[Term], bool_vars: list[Term]):
    """Enumerate every assignment over the (small) variable pool."""
    bv_domains = [range(1 << WIDTH)] * len(bv_vars)
    bool_domains = [range(2)] * len(bool_vars)
    for values in itertools.product(*bv_domains, *bool_domains):
        assignment = dict(zip(bv_vars, values[:len(bv_vars)]))
        assignment.update(zip(bool_vars, values[len(bv_vars):]))
        yield assignment
