"""Differential suite: warm re-analysis never changes the report list.

For 25 seeded generator programs, a cold ``--cache-dir`` run is followed
by warm runs against four mutation kinds — no-op whitespace, a
single-function body edit, a function added, a function deleted — and
each warm result must equal a from-scratch cold run on the mutated
program.  The no-op and single-edit cases additionally pin the dirty
set exactly: empty for the no-op, exactly the edited function for a
body edit that leaves the function's interface (quick-path summary,
parameters, return variable) unchanged.
"""

import re
import tempfile

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.exec import ArtifactStore
from repro.fusion import FusionEngine, prepare_pdg
from repro.lang import LoweringConfig, compile_source

SEEDS = list(range(25))

EXTRA_FUNCTION = ("\nfun zzz_added(a, b) {\n  v1 = a + b;\n"
                  "  return v1 * 2 + 1;\n}\n")


def fuzz_source(seed: int) -> str:
    spec = SubjectSpec("store-diff", seed=seed, num_functions=5,
                       layers=2, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    return generate_subject(spec).source


def analyze(source: str, store=None):
    pdg = prepare_pdg(compile_source(source, LoweringConfig()))
    return FusionEngine(pdg).analyze(NullDereferenceChecker(), store=store)


def report_key(result):
    """Order-sensitive, index-free report identity."""
    return [(r.feasible, r.source.function, repr(r.source.stmt),
             r.sink.function, repr(r.sink.stmt),
             tuple(sorted(r.witness.items())))
            for r in result.reports]


def whitespace_noop(source: str) -> tuple[str, str]:
    return "\n\n" + source.replace("\n}", "\n}\n") + "\n", ""


def body_edit(source: str) -> tuple[str, str]:
    """Insert an unused statement at the top of the first function —
    content changes, interface (summary/params/return) does not."""
    match = re.search(r"fun (\w+)\([^)]*\) \{\n", source)
    assert match is not None
    edited = (source[:match.end()] + "  zq_edit = 7;\n"
              + source[match.end():])
    return edited, match.group(1)


def add_function(source: str) -> tuple[str, str]:
    return source + EXTRA_FUNCTION, "zzz_added"


def delete_function(source: str) -> tuple[str, str]:
    """The cold run sees source+extra; the warm run sees it deleted."""
    return source, "zzz_added"


@pytest.mark.parametrize("seed", SEEDS)
def test_noop_whitespace_replays_everything(seed):
    src = fuzz_source(seed)
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root, label="diff")
        cold = analyze(src, store=store)
        assert cold.candidates > 0, "fuzz spec generated no candidates"
        mutated, _ = whitespace_noop(src)
        warm = analyze(mutated, store=store)
        stats = store.last_run
        assert stats.dirty_functions == set()
        assert stats.changed_functions == set()
        assert warm.smt_queries == 0
        assert warm.replayed_verdicts == warm.candidates
        assert report_key(warm) == report_key(cold)


@pytest.mark.parametrize("seed", SEEDS)
def test_single_function_edit_dirties_exactly_that_function(seed):
    src = fuzz_source(seed)
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root, label="diff")
        analyze(src, store=store)
        mutated, edited_fn = body_edit(src)
        warm = analyze(mutated, store=store)
        stats = store.last_run
        assert stats.changed_functions == {edited_fn}
        assert stats.dirty_functions == {edited_fn}
        assert report_key(warm) == report_key(analyze(mutated))
        # Only candidates whose recorded deps include the edited
        # function may re-solve; everything else replays.
        assert stats.hits + stats.invalidations + stats.misses \
            == warm.candidates


@pytest.mark.parametrize("seed", SEEDS)
def test_mutated_warm_equals_mutated_cold(seed):
    """The rotated mutation ladder: every warm run must agree with a
    from-scratch run on the mutated program, byte for byte at the
    report level."""
    src = fuzz_source(seed)
    mutate = (body_edit, add_function, delete_function)[seed % 3]
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root, label="diff")
        cold_src = src + EXTRA_FUNCTION if mutate is delete_function \
            else src
        analyze(cold_src, store=store)
        mutated, touched = mutate(src)
        warm = analyze(mutated, store=store)
        stats = store.last_run
        assert not stats.cold
        if mutate is add_function:
            assert stats.dirty_functions == {touched}
            assert warm.smt_queries == 0  # nothing calls the new function
        if mutate is delete_function:
            assert touched in stats.changed_functions
        fresh = analyze(mutated)
        assert report_key(warm) == report_key(fresh)
        assert warm.candidates == fresh.candidates
