"""Unit and property tests for the preprocessing pipeline.

The key soundness property: preprocessing preserves satisfiability, and a
model of the residual constraint set extends (via the recorded completion
steps) to a model of the original constraints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (Preprocessor, TermManager, Verdict, evaluate,
                       constraint_set_size, flatten_conjunction)
from strategies import bool_terms, make_manager


@pytest.fixture
def mgr():
    return TermManager()


def run(mgr, constraints, **kwargs):
    return Preprocessor(mgr, **kwargs).run(constraints)


class TestFlatten:
    def test_splits_nested_conjunctions(self, mgr):
        p, q, r = (mgr.bool_var(n) for n in "pqr")
        flat = flatten_conjunction([mgr.and_(p, mgr.and_(q, r))])
        assert flat == [p, q, r]

    def test_size_counts_shared_nodes_once(self, mgr):
        x = mgr.bv_var("x", 8)
        c = mgr.eq(x, mgr.bv_const(1, 8))
        assert constraint_set_size([c, c]) == c.dag_size()


class TestConstantPropagation:
    def test_binding_propagates(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        result = run(mgr, [
            mgr.eq(x, mgr.bv_const(4, 8)),
            mgr.eq(y, mgr.bvadd(x, mgr.bv_const(1, 8))),
        ])
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        assert model[x] == 4 and model[y] == 5

    def test_conflicting_constants_unsat(self, mgr):
        x = mgr.bv_var("x", 8)
        result = run(mgr, [mgr.eq(x, mgr.bv_const(1, 8)),
                           mgr.eq(x, mgr.bv_const(2, 8))])
        assert result.verdict is Verdict.UNSAT

    def test_asserted_bool_var_backward_propagates(self, mgr):
        p, q = mgr.bool_var("p"), mgr.bool_var("q")
        result = run(mgr, [p, mgr.implies(p, q)])
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        assert model[p] == 1 and model[q] == 1

    def test_negated_bool_var(self, mgr):
        p = mgr.bool_var("p")
        result = run(mgr, [mgr.not_(p), p])
        assert result.verdict is Verdict.UNSAT


class TestEqualityPropagation:
    def test_chain_collapses(self, mgr):
        # The paper's bar example: z = y, y = 2x; the chained equalities
        # disappear, leaving everything expressed over x.
        x, y, z = (mgr.bv_var(n, 8) for n in "xyz")
        two = mgr.bv_const(2, 8)
        result = run(mgr, [mgr.eq(y, mgr.bvmul(x, two)), mgr.eq(z, y)],
                     enabled=("equalities",))
        assert result.constraints == []
        assert result.verdict is Verdict.SAT

    def test_cyclic_equality_not_substituted_unsoundly(self, mgr):
        x = mgr.bv_var("x", 8)
        # x = x + 1 has no solution; must NOT be treated as a definition.
        constraint = mgr.eq(x, mgr.bvadd(x, mgr.bv_const(1, 8)))
        result = run(mgr, [constraint], enabled=("equalities",))
        assert result.verdict is not Verdict.SAT

    def test_model_completion_follows_definition(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        result = run(mgr, [mgr.eq(y, mgr.bvadd(x, mgr.bv_const(3, 8)))],
                     enabled=("equalities",))
        assert result.verdict is Verdict.SAT
        model = result.complete_model({x: 10})
        assert model[y] == 13


class TestUnconstrainedElimination:
    def test_paper_section2_example(self, mgr):
        # c = a, d = b, e = c < d with a, b unconstrained: SAT decided in
        # preprocessing, no search needed.
        a, b, c, d = (mgr.bv_var(n, 8) for n in "abcd")
        result = run(mgr, [mgr.eq(c, a), mgr.eq(d, b), mgr.slt(c, d)])
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        # The completed model must actually witness c < d.
        assert evaluate(mgr.slt(c, d), model) == 1

    def test_addition_with_fresh_var_unconstrained(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        # x + (y*y) == 0 is satisfiable for any y since x occurs once.
        constraint = mgr.eq(mgr.bvadd(x, mgr.bvmul(y, y)),
                            mgr.bv_const(0, 8))
        result = run(mgr, [constraint])
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        assert evaluate(constraint, model) == 1

    def test_var_occurring_twice_not_eliminated(self, mgr):
        x = mgr.bv_var("x", 8)
        # x + x == 1 is UNSAT in 8-bit arithmetic (LHS always even); an
        # unsound elimination would wrongly declare it SAT.
        constraint = mgr.eq(mgr.bvadd(x, x), mgr.bv_const(1, 8))
        result = run(mgr, [constraint], enabled=("unconstrained",))
        assert result.verdict is not Verdict.SAT

    def test_shared_subterm_counts_as_multiple_occurrences(self, mgr):
        x = mgr.bv_var("x", 8)
        shared = mgr.bvadd(x, mgr.bv_const(1, 8))
        constraint = mgr.eq(mgr.bvmul(shared, shared), mgr.bv_const(3, 8))
        result = run(mgr, [constraint], enabled=("unconstrained",))
        # x reaches the root through two paths; (x+1)^2 == 3 must not be
        # "solved" by unconstrained elimination (it is UNSAT: 3 is not a
        # quadratic residue pattern reachable by squares mod 256).
        assert result.verdict is not Verdict.SAT

    def test_odd_multiplication_inverted(self, mgr):
        x = mgr.bv_var("x", 8)
        constraint = mgr.eq(mgr.bvmul(x, mgr.bv_const(3, 8)),
                            mgr.bv_const(7, 8))
        result = run(mgr, [constraint])
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        assert (model[x] * 3) % 256 == 7


class TestGaussianElimination:
    def test_figure1_return_value_conditions(self, mgr):
        # y1 = 2*x1, z1 = y1, c = z1, y2 = 2*x2, z2 = y2, d = z2, c < d.
        names = ["x1", "y1", "z1", "c", "x2", "y2", "z2", "d"]
        v = {n: mgr.bv_var(n, 8) for n in names}
        two = mgr.bv_const(2, 8)
        constraints = [
            mgr.eq(v["y1"], mgr.bvmul(two, v["x1"])),
            mgr.eq(v["z1"], v["y1"]),
            mgr.eq(v["c"], v["z1"]),
            mgr.eq(v["y2"], mgr.bvmul(two, v["x2"])),
            mgr.eq(v["z2"], v["y2"]),
            mgr.eq(v["d"], v["z2"]),
            mgr.slt(v["c"], v["d"]),
        ]
        result = run(mgr, constraints)
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        for c in constraints:
            assert evaluate(c, model) == 1

    def test_linear_contradiction(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        result = run(mgr, [
            mgr.eq(mgr.bvadd(x, y), mgr.bv_const(1, 8)),
            mgr.eq(mgr.bvadd(x, y), mgr.bv_const(2, 8)),
        ], enabled=("gaussian",))
        assert result.verdict is Verdict.UNSAT

    def test_solvable_system(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        result = run(mgr, [
            mgr.eq(mgr.bvadd(x, y), mgr.bv_const(10, 8)),
            mgr.eq(mgr.bvsub(x, y), mgr.bv_const(4, 8)),
        ])
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        assert (model[x] + model[y]) % 256 == 10
        assert (model[x] - model[y]) % 256 == 4

    def test_even_coefficient_divisibility_unsat(self, mgr):
        x = mgr.bv_var("x", 8)
        # 2x = 1 has no solution mod 256: LHS is always even.
        result = run(mgr, [mgr.eq(mgr.bvmul(mgr.bv_const(2, 8), x),
                                  mgr.bv_const(1, 8))],
                     enabled=("gaussian",))
        assert result.verdict is Verdict.UNSAT

    def test_even_coefficient_isolated_row_solved(self, mgr):
        x = mgr.bv_var("x", 8)
        # 254x = 250 mod 256 is solvable (x = 3) despite the even pivot.
        constraint = mgr.eq(mgr.bvmul(mgr.bv_const(254, 8), x),
                            mgr.bv_const(250, 8))
        result = run(mgr, [constraint], enabled=("gaussian",))
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        assert evaluate(constraint, model) == 1

    def test_even_row_with_shared_var_kept(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        # x also appears in a non-linear constraint, so the even row cannot
        # be discharged by fixing x.
        result = run(mgr, [
            mgr.eq(mgr.bvmul(mgr.bv_const(2, 8), x), mgr.bv_const(2, 8)),
            mgr.eq(mgr.bvmul(x, y), mgr.bv_const(9, 8)),
        ], enabled=("gaussian",))
        assert result.verdict is Verdict.UNKNOWN


class TestStrengthReduction:
    def test_mul_by_power_of_two(self, mgr):
        x = mgr.bv_var("x", 8)
        result = run(mgr, [mgr.eq(mgr.bvmul(x, mgr.bv_const(4, 8)),
                                  mgr.bv_var("y", 8))],
                     enabled=("strength",))
        [c] = result.constraints
        assert "bvshl" in repr(c)
        assert result.stats.strength_reduced == 1

    def test_udiv_and_urem_by_power_of_two(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        result = run(mgr, [
            mgr.eq(y, mgr.bvudiv(x, mgr.bv_const(8, 8))),
        ], enabled=("strength",))
        assert any("bvlshr" in repr(c) for c in result.constraints)
        result = run(mgr, [
            mgr.eq(y, mgr.bvurem(x, mgr.bv_const(8, 8))),
        ], enabled=("strength",))
        assert any("bvand" in repr(c) for c in result.constraints)


class TestPipeline:
    def test_empty_input_is_sat(self, mgr):
        assert run(mgr, []).verdict is Verdict.SAT

    def test_false_constraint_is_unsat(self, mgr):
        assert run(mgr, [mgr.false]).verdict is Verdict.UNSAT

    def test_unknown_pass_name_rejected(self, mgr):
        with pytest.raises(ValueError):
            Preprocessor(mgr, enabled=("nonsense",))

    def test_stats_record_size_reduction(self, mgr):
        x, y, z = (mgr.bv_var(n, 8) for n in "xyz")
        result = run(mgr, [mgr.eq(y, x), mgr.eq(z, y),
                           mgr.slt(z, mgr.bv_var("w", 8))])
        assert result.stats.initial_size > result.stats.final_size
        assert result.verdict is Verdict.SAT


class TestSoundnessProperty:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_preprocess_preserves_satisfiability(self, data):
        """If the evaluator finds a witness for the original constraints,
        preprocessing must not return UNSAT — and SAT verdicts must come
        with extendable models."""
        mgr, bv_vars, bool_vars = make_manager()
        strategy = bool_terms(mgr, bv_vars, bool_vars)
        constraints = data.draw(
            st.lists(strategy, min_size=1, max_size=3))
        witness = data.draw(st.fixed_dictionaries(
            {v: st.integers(0, 15) for v in bv_vars}
            | {v: st.integers(0, 1) for v in bool_vars}))
        original_holds = all(evaluate(c, witness) == 1 for c in constraints)

        result = Preprocessor(mgr).run(constraints)
        if original_holds:
            assert result.verdict is not Verdict.UNSAT
        if result.verdict is Verdict.SAT:
            model = result.complete_model({})
            for c in constraints:
                for var in c.free_vars():
                    model.setdefault(var, 0)
                assert evaluate(c, model) == 1
