"""Fault-injection differential suite (docs/robustness.md).

The fault-tolerance contract under test: with a deterministic
:class:`FaultPlan` injected, the analysis still completes, only the
*faulted* queries' statuses may change (to UNKNOWN, reported feasible by
the soundy convention), and every surviving verdict, witness and report
position is identical to the fault-free sequential run — on the thread
and process backends, at jobs 1 and 4.  Worker death (a real SIGKILL in
process workers) must never surface as an unhandled
``BrokenProcessPool``: the scheduler requeues the lost batches, rebuilds
the pool, and degrades process → thread → inline when crashes persist.
"""

import json
import os
import time

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.cli import main
from repro.exec import ExecConfig, FaultPlan, FaultPolicy, Telemetry
from repro.exec.faults import InjectedQueryError
from repro.fusion import (FusionConfig, FusionEngine, GraphSolverConfig,
                          prepare_pdg)
from repro.smt.solver import SolverConfig

#: CI matrix entries pin the seeds via REPRO_FAULT_SEEDS; locally a fixed
#: default keeps the suite deterministic and always-on.
FAULT_SEEDS = [int(s) for s in
               os.environ.get("REPRO_FAULT_SEEDS", "3").split(",")]


def fuzz_pdg(seed: int):
    spec = SubjectSpec("fuzz-faults", seed=seed, num_functions=6,
                       layers=3, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    return prepare_pdg(generate_subject(spec).program)


def engine(pdg, time_limit=10.0):
    return FusionEngine(pdg, FusionConfig(
        solver=GraphSolverConfig(want_model=True,
                                 solver=SolverConfig(
                                     time_limit=time_limit))))


def canonical(result):
    """Every program-visible report field, in report order."""
    return [(report.checker,
             tuple((step.vertex.index, step.frame.fid)
                   for step in report.candidate.path.steps),
             report.feasible,
             report.decided_in_preprocess,
             tuple(sorted(report.witness.items())))
            for report in result.reports]


def assert_only_faulted_changed(sequential, faulted_run, faulted_indices):
    """The differential contract: same report count and order; every
    non-faulted report byte-identical; faulted ones at worst UNKNOWN
    (feasible, no witness) — never dropped."""
    seq, par = canonical(sequential), canonical(faulted_run)
    assert len(seq) == len(par)
    for index, (expected, actual) in enumerate(zip(seq, par)):
        if index in faulted_indices:
            checker, path, feasible, in_preprocess, witness = actual
            assert (checker, path) == expected[:2]  # position preserved
            assert feasible, "faulted query must stay reported (soundy)"
        else:
            assert actual == expected, f"non-faulted report {index} changed"


class TestRaiseFaults:
    @pytest.mark.parametrize("backend,jobs", [("thread", 1), ("thread", 4),
                                              ("process", 1),
                                              ("process", 4)])
    def test_differential_across_backends(self, backend, jobs):
        pdg = fuzz_pdg(FAULT_SEEDS[0])
        checker = NullDereferenceChecker()
        sequential = engine(pdg).analyze(checker)
        assert sequential.candidates >= 2
        plan = FaultPlan(raise_on_query=frozenset({0}))
        telemetry = Telemetry()
        faulted = engine(pdg).analyze(
            checker, exec_config=ExecConfig(jobs=jobs, backend=backend,
                                            fault_plan=plan),
            telemetry=telemetry)
        assert faulted.failure is None
        assert_only_faulted_changed(sequential, faulted, {0})
        assert faulted.error_queries == 1
        assert telemetry.as_dict()["faults"]["query_errors"] == 1

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_seeded_plans_are_differential(self, seed):
        """The CI resilience matrix: a seeded plan (a raise-fault subset
        plus one recoverable batch crash) must leave every non-faulted
        verdict untouched."""
        pdg = fuzz_pdg(seed)
        checker = NullDereferenceChecker()
        sequential = engine(pdg).analyze(checker)
        count = len(sequential.reports)
        plan = FaultPlan.seeded(seed, num_queries=count, num_batches=2)
        faulted = engine(pdg).analyze(
            checker, exec_config=ExecConfig(jobs=4, backend="thread",
                                            fault_plan=plan))
        assert faulted.failure is None
        assert_only_faulted_changed(sequential, faulted,
                                    plan.raise_on_query)

    def test_abort_policy_propagates_the_failure(self):
        """on_error=abort is the pre-robustness behavior: the injected
        exception unwinds out of the analysis instead of degrading."""
        pdg = fuzz_pdg(FAULT_SEEDS[0])
        plan = FaultPlan(raise_on_query=frozenset({0}))
        with pytest.raises(InjectedQueryError):
            engine(pdg).analyze(
                NullDereferenceChecker(),
                exec_config=ExecConfig(jobs=2, backend="thread",
                                       fault_plan=plan,
                                       faults=FaultPolicy(
                                           on_error="abort")))


class TestWorkerCrashes:
    def test_process_worker_sigkill_is_recovered(self):
        """A worker process really dies (SIGKILL, surfacing as
        BrokenProcessPool); the run must still complete with verdicts
        identical to the fault-free sequential run."""
        pdg = fuzz_pdg(FAULT_SEEDS[0])
        checker = NullDereferenceChecker()
        sequential = engine(pdg).analyze(checker)
        telemetry = Telemetry()
        crashed = engine(pdg).analyze(
            checker, exec_config=ExecConfig(
                jobs=2, backend="process",
                fault_plan=FaultPlan.parse("crash=0")),
            telemetry=telemetry)
        assert crashed.failure is None
        assert canonical(crashed) == canonical(sequential)
        faults = telemetry.as_dict()["faults"]
        assert faults["pool_rebuilds"] >= 1
        assert faults["requeued_batches"] >= 1

    def test_thread_worker_crash_is_retried(self):
        pdg = fuzz_pdg(FAULT_SEEDS[0])
        checker = NullDereferenceChecker()
        sequential = engine(pdg).analyze(checker)
        telemetry = Telemetry()
        crashed = engine(pdg).analyze(
            checker, exec_config=ExecConfig(
                jobs=2, backend="thread",
                fault_plan=FaultPlan.parse("crash=0")),
            telemetry=telemetry)
        assert crashed.failure is None
        assert canonical(crashed) == canonical(sequential)
        assert telemetry.as_dict()["faults"]["batch_retries"] >= 1

    def test_persistent_crashes_degrade_down_the_ladder(self):
        """crash_times past the retry budget exhausts process-pool
        rebuilds; the lost batches must fall to the thread rung and the
        run must still complete — at worst with synthesized UNKNOWNs,
        never an unhandled BrokenProcessPool."""
        pdg = fuzz_pdg(FAULT_SEEDS[0])
        checker = NullDereferenceChecker()
        telemetry = Telemetry()
        result = engine(pdg).analyze(
            checker, exec_config=ExecConfig(
                jobs=2, backend="process",
                fault_plan=FaultPlan.parse("crash=0;crash-times=99"),
                faults=FaultPolicy(max_retries=1, retry_backoff=0.01)),
            telemetry=telemetry)
        assert result.failure is None
        assert len(result.reports) == result.candidates  # nothing dropped
        faults = telemetry.as_dict()["faults"]
        assert faults["degradations"] >= 1
        assert faults["pool_rebuilds"] >= 1
        # The synthesized queries stay reported (soundy convention).
        for report in result.reports:
            assert report.feasible or not report.decided_in_triage


class TestDeadlines:
    def test_unknown_reported_feasible_end_to_end(self):
        """A zero per-query budget turns every query UNKNOWN; both the
        sequential and the scheduled driver must count them and report
        them feasible, and agree with each other."""
        pdg = fuzz_pdg(FAULT_SEEDS[0])
        checker = NullDereferenceChecker()
        sequential = engine(pdg, time_limit=0.0).analyze(
            checker, exec_config=ExecConfig())
        assert sequential.smt_queries > 0
        assert sequential.unknown_queries == sequential.smt_queries
        assert all(r.feasible for r in sequential.reports)
        parallel = engine(pdg, time_limit=0.0).analyze(
            checker, exec_config=ExecConfig(jobs=4, backend="thread"))
        assert parallel.unknown_queries == sequential.unknown_queries
        assert canonical(parallel) == canonical(sequential)

    def test_query_timeout_bounds_pathological_query(self, tmp_path):
        """`repro analyze --query-timeout` must bound the wall time of a
        query that would otherwise run (here: sleep) far past it."""
        out = tmp_path / "telemetry.json"
        start = time.perf_counter()
        rc = main(["analyze", "--subject", "mcf", "--jobs", "2",
                   "--backend", "thread", "--fault-plan", "delay=0:30",
                   "--query-timeout", "0.3", "--telemetry", str(out)])
        elapsed = time.perf_counter() - start
        assert rc == 0
        assert elapsed < 10.0, elapsed
        payload = json.loads(out.read_text())
        assert payload["faults"]["query_timeouts"] >= 1

    def test_injected_delay_without_timeout_merely_runs_late(self):
        pdg = fuzz_pdg(FAULT_SEEDS[0])
        checker = NullDereferenceChecker()
        sequential = engine(pdg).analyze(checker)
        delayed = engine(pdg).analyze(
            checker, exec_config=ExecConfig(
                jobs=2, backend="thread",
                fault_plan=FaultPlan.parse("delay=0:0.05")))
        assert delayed.failure is None
        assert canonical(delayed) == canonical(sequential)
        assert delayed.error_queries == 0
