"""Poison-group circuit breaker: state machine and scheduler wiring.

Contract (docs/robustness.md):

* K consecutive failure events for one ``(checker, sink)`` group open
  the breaker for that group — and only that group;
* while open, the group's queries are short-circuited to UNKNOWN
  outcomes carrying the breaker metadata (no worker time, no solver
  stats), yet the report list stays complete;
* after the cooldown one half-open probe runs: success closes the
  breaker (and the next run is byte-identical to an unbroken one),
  failure re-opens it;
* breaker state is owned by the session lifetime — it never rides into
  pickled worker specs.
"""

import pickle
import time

from repro.engine import findings_payload
from repro.exec import (CircuitBreaker, ExecConfig, FaultPlan, FaultPolicy,
                        Telemetry)
from repro.fusion import FusionEngine, prepare_pdg
from repro.checkers import NullDereferenceChecker
from repro.lang import LoweringConfig, compile_source

import pytest

#: Two candidates in two distinct (checker, sink-function) groups: the
#: deref in ``main`` is feasible, the one in ``poison`` is infeasible.
SOURCE = """
fun poison(a) {
  p = null;
  if (a < a) { deref(p); }
  return a;
}
fun main(a, b) {
  q = null;
  c = poison(a);
  if (a < b) { deref(q); }
  return c;
}
"""


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


# --------------------------------------------------------------------- #
# State machine (fake clock)
# --------------------------------------------------------------------- #


class TestStateMachine:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_trips_after_k_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        group = ("null-deref", "f")
        assert not breaker.record_failure(group)
        assert not breaker.record_failure(group)
        assert breaker.record_failure(group)  # the trip
        assert breaker.state(group) == "open"
        assert breaker.admit(group) == (False, False)
        assert breaker.open_count() == 1
        assert breaker.open_groups() == [group]

    def test_success_resets_the_consecutive_counter(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        group = ("null-deref", "f")
        breaker.record_failure(group)
        breaker.record_success(group)
        assert not breaker.record_failure(group)  # count restarted
        assert breaker.state(group) == "closed"

    def test_groups_are_independent(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure(("null-deref", "a"))
        assert breaker.admit(("null-deref", "a")) == (False, False)
        assert breaker.admit(("null-deref", "b")) == (True, False)
        assert breaker.admit(("cwe-23", "a")) == (True, False)

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
        group = ("null-deref", "f")
        assert breaker.record_failure(group)
        assert breaker.admit(group) == (False, False)
        clock.now += 29.0
        assert breaker.admit(group) == (False, False)
        clock.now += 2.0
        assert breaker.admit(group) == (True, True)   # the probe
        assert breaker.state(group) == "half_open"
        # Only one probe per cooldown window.
        assert breaker.admit(group) == (False, False)

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        group = ("null-deref", "f")
        breaker.record_failure(group)
        clock.now += 11.0
        assert breaker.admit(group) == (True, True)
        assert breaker.record_success(group)  # recovery
        assert breaker.state(group) == "closed"
        assert breaker.admit(group) == (True, False)

        breaker.record_failure(group)
        clock.now += 11.0
        assert breaker.admit(group) == (True, True)
        assert breaker.record_failure(group)  # probe failed: re-trip
        assert breaker.state(group) == "open"
        assert breaker.admit(group) == (False, False)

    def test_abandoned_probe_is_retaken_after_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        group = ("null-deref", "f")
        breaker.record_failure(group)
        clock.now += 11.0
        assert breaker.admit(group) == (True, True)
        # The probing run dies without reporting.  Another cooldown later
        # the group probes again instead of wedging half-open forever.
        clock.now += 11.0
        assert breaker.admit(group) == (True, True)

    def test_describe_carries_the_metadata(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5.0,
                                 clock=FakeClock())
        group = ("null-deref", "sinkfn")
        breaker.record_failure(group)
        breaker.record_failure(group)
        message = breaker.describe(group)
        assert message.startswith("CircuitBreakerOpen:")
        assert "sinkfn" in message and "2 consecutive failures" in message

    def test_snapshot_is_json_friendly(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure(("null-deref", "f"))
        snapshot = breaker.snapshot()
        assert any(entry["state"] == "open"
                   for entry in snapshot.values())


# --------------------------------------------------------------------- #
# Scheduler integration
# --------------------------------------------------------------------- #


def make_engine():
    return FusionEngine(prepare_pdg(
        compile_source(SOURCE, LoweringConfig())))


def run(engine, breaker, fault_plan=None):
    telemetry = Telemetry()
    result = engine.analyze(
        NullDereferenceChecker(),
        exec_config=ExecConfig(jobs=1, breaker=breaker,
                               fault_plan=fault_plan,
                               faults=FaultPolicy(retry_backoff=0.0)),
        telemetry=telemetry)
    return result, telemetry.as_dict()


class TestSchedulerIntegration:
    def poison_index(self, baseline):
        """Index of the feasible candidate (sink in ``main``)."""
        (index,) = [i for i, report in enumerate(baseline.reports)
                    if report.sink.function == "main"]
        return index

    def test_trip_short_circuit_and_recovery(self):
        baseline_engine = make_engine()
        baseline = baseline_engine.analyze(NullDereferenceChecker())
        assert baseline.candidates == 2
        poison = self.poison_index(baseline)
        other = 1 - poison

        engine = make_engine()
        breaker = CircuitBreaker(threshold=2, cooldown=0.05)
        plan = FaultPlan(raise_on_query=frozenset({poison}))

        # Two faulted runs: the poisoned group accumulates failures and
        # trips at the threshold; the other group is untouched.
        _, snap1 = run(engine, breaker, plan)
        assert snap1["breaker"]["trips"] == 0
        result2, snap2 = run(engine, breaker, plan)
        assert snap2["breaker"]["trips"] == 1
        assert breaker.open_count() == 1
        assert result2.reports[other].feasible is False

        # Open: the poisoned group is short-circuited, the report list
        # stays complete, and only that group degrades to UNKNOWN.
        result3, snap3 = run(engine, breaker)
        assert snap3["breaker"]["short_circuits"] == 1
        assert snap3["breaker"]["open_groups"] == 1
        assert len(result3.reports) == 2
        assert result3.unknown_queries == 1
        blocked = result3.reports[poison]
        assert blocked.feasible and blocked.witness == {} \
            and blocked.solve_time == 0.0
        assert result3.reports[other].feasible is False
        # Short-circuits cost no solver time: the query stats section
        # saw exactly one real query.
        assert snap3["solver"]["total"] == 1

        # After the cooldown the probe runs clean, the breaker closes,
        # and the run is byte-identical to the unbroken baseline.
        time.sleep(0.08)
        result4, snap4 = run(engine, breaker)
        assert snap4["breaker"]["probes"] == 1
        assert snap4["breaker"]["recoveries"] == 1
        assert snap4["breaker"]["open_groups"] == 0
        assert breaker.open_count() == 0
        assert findings_payload(result4) == findings_payload(baseline)

    def test_failed_probe_reopens(self):
        engine = make_engine()
        baseline = make_engine().analyze(NullDereferenceChecker())
        poison = self.poison_index(baseline)
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        plan = FaultPlan(raise_on_query=frozenset({poison}))

        _, snap1 = run(engine, breaker, plan)
        assert snap1["breaker"]["trips"] == 1
        time.sleep(0.08)
        # Probe still faulted: it fails and the group re-opens.
        _, snap2 = run(engine, breaker, plan)
        assert snap2["breaker"]["probes"] == 1
        assert snap2["breaker"]["recoveries"] == 0
        assert breaker.open_count() == 1

    def test_breaker_never_rides_into_worker_specs(self):
        engine = make_engine()
        breaker = CircuitBreaker(threshold=1)
        config = ExecConfig(jobs=2, backend="process", breaker=breaker)
        plan = engine._execution_plan(NullDereferenceChecker(), config,
                                      None)
        assert plan is not None and plan.spec is not None
        pickle.dumps(plan.spec)  # must not drag the breaker along
        assert not hasattr(plan.spec, "breaker")

    def test_disabled_breaker_is_the_identity(self):
        engine = make_engine()
        with_none = engine.analyze(NullDereferenceChecker(),
                                   exec_config=ExecConfig(jobs=1))
        engine2 = make_engine()
        with_breaker, _ = run(engine2, CircuitBreaker(threshold=50))
        assert findings_payload(with_none) \
            == findings_payload(with_breaker)
