"""Unit tests for the abstract-interpretation triage pass.

Three layers: exhaustive interval-transfer soundness at a small width
(every op, every concrete pair must land inside the abstract result),
the sparse fixpoint on handwritten programs, and the triage verdicts on
programs engineered to hit each of the three outcomes.
"""

from repro.absint import (CandidateTriage, Interval, Nullness, TriageVerdict,
                          analyze_pdg, binary_interval)
from repro.absint.transfer import wrap_range
from repro.checkers import NullDereferenceChecker
from repro.fusion import FusionEngine, prepare_pdg
from repro.lang import BinOp, compile_source
from repro.smt import to_signed
from repro.sparse import collect_candidates

WIDTH = 4
MASK = (1 << WIDTH) - 1


def concrete(op: BinOp, a: int, b: int) -> int:
    """The interpreter's bit-level semantics (signed result)."""
    au, bu = a & MASK, b & MASK
    if op is BinOp.ADD:
        bits = (au + bu) & MASK
    elif op is BinOp.SUB:
        bits = (au - bu) & MASK
    elif op is BinOp.MUL:
        bits = (au * bu) & MASK
    elif op is BinOp.DIV:
        bits = MASK if bu == 0 else (au // bu) & MASK
    elif op is BinOp.REM:
        bits = au if bu == 0 else au % bu
    elif op is BinOp.SHL:
        bits = 0 if bu >= WIDTH else (au << bu) & MASK
    elif op is BinOp.SHR:
        bits = 0 if bu >= WIDTH else au >> bu
    elif op is BinOp.BAND:
        bits = au & bu
    elif op is BinOp.BOR:
        bits = au | bu
    elif op is BinOp.BXOR:
        bits = au ^ bu
    elif op is BinOp.LT:
        bits = int(a < b)
    elif op is BinOp.LE:
        bits = int(a <= b)
    elif op is BinOp.GT:
        bits = int(a > b)
    elif op is BinOp.GE:
        bits = int(a >= b)
    elif op is BinOp.EQ:
        bits = int(au == bu)
    elif op is BinOp.NE:
        bits = int(au != bu)
    elif op is BinOp.AND:
        bits = int(bool(au) and bool(bu))
    elif op is BinOp.OR:
        bits = int(bool(au) or bool(bu))
    else:
        raise AssertionError(op)
    return to_signed(bits, WIDTH)


def all_values():
    return range(-(1 << (WIDTH - 1)), 1 << (WIDTH - 1))


def test_wrap_range_is_exact_or_top():
    for lo in range(-20, 21):
        for hi in range(lo, lo + 20):
            box = wrap_range(lo, hi, WIDTH)
            for x in range(lo, hi + 1):
                assert box.contains(to_signed(x & MASK, WIDTH)), (lo, hi, x)


def test_binary_transfer_sound_on_singletons():
    """Exhaustive: op(a, b) is inside binary_interval([a,a], [b,b])."""
    for op in BinOp:
        for a in all_values():
            for b in all_values():
                box = binary_interval(op, Interval.const(a),
                                      Interval.const(b), WIDTH)
                assert box.contains(concrete(op, a, b)), (op, a, b, box)


def test_binary_transfer_sound_on_ranges():
    """Sampled ranges: every concrete pair stays inside the box."""
    ranges = [Interval(-8, -1), Interval(-2, 3), Interval(0, 7),
              Interval(1, 4), Interval.top(WIDTH), Interval.const(0)]
    for op in BinOp:
        for ia in ranges:
            for ib in ranges:
                box = binary_interval(op, ia, ib, WIDTH)
                for a in range(ia.lo, ia.hi + 1):
                    for b in range(ib.lo, ib.hi + 1):
                        assert box.contains(concrete(op, a, b)), \
                            (op, ia, ib, a, b, box)


def test_interval_lattice_basics():
    top = Interval.top(8)
    five = Interval.const(5)
    assert five.join(Interval.const(9)) == Interval(5, 9)
    assert five.meet(Interval(0, 4)) is None
    assert five.meet(Interval(5, 9)) == five
    assert five.subset_of(top) and not top.subset_of(five)
    assert Interval.const(1).definitely_true
    assert Interval.const(0).definitely_false
    assert not Interval(0, 1).definitely_true


FIXPOINT_SRC = """
fun main(a) {
  x = 3;
  y = x + 4;
  if (a > 0) {
    z = 1;
  } else {
    z = 2;
  }
  w = a + 1;
  return y + z;
}
"""


def test_fixpoint_constants_and_joins():
    pdg = prepare_pdg(compile_source(FIXPOINT_SRC))
    state = analyze_pdg(pdg)
    assert state.var_value("main", "y").interval == Interval.const(7)
    # The ite merge of z joins both arms.
    joined = [state.value_of(v).interval for v in pdg.vertices
              if v.function == "main" and v.var.name.startswith("z")]
    assert Interval(1, 2) in joined, joined
    # Parameters stay top: w = a + 1 cannot be narrowed.
    assert state.var_value("main", "w").interval == Interval.top(
        pdg.program.width)


def test_fixpoint_nullness():
    src = """
    fun main(a) {
      p = null;
      q = 5;
      deref(q);
      return 0;
    }
    """
    pdg = prepare_pdg(compile_source(src))
    state = analyze_pdg(pdg)
    assert state.var_value("main", "p").nullness is Nullness.NULL
    # Null reduces the interval to the zero constant.
    assert state.var_value("main", "p").interval == Interval.const(0)
    assert state.var_value("main", "q").nullness is Nullness.NOT_NULL


def _candidates(src):
    pdg = prepare_pdg(compile_source(src))
    checker = NullDereferenceChecker()
    cands = collect_candidates(pdg, checker)
    return pdg, checker, cands


def test_triage_proves_feasible_straight_line():
    src = """
    fun main(a) {
      p = null;
      deref(p);
      return 0;
    }
    """
    pdg, checker, cands = _candidates(src)
    assert cands
    triage = CandidateTriage(pdg, checker)
    decision = triage.decide(cands[0])
    assert decision.verdict is TriageVerdict.PROVEN_FEASIBLE
    assert isinstance(decision.witness, dict)


def test_triage_proves_infeasible_contradictory_guard():
    src = """
    fun main(a) {
      p = null;
      if (a > 6) {
        if (a < 3) {
          deref(p);
        }
      }
      return 0;
    }
    """
    pdg, checker, cands = _candidates(src)
    assert cands
    triage = CandidateTriage(pdg, checker)
    assert triage.decide(cands[0]).verdict is TriageVerdict.PROVEN_INFEASIBLE


def test_triage_proves_infeasible_through_arithmetic():
    src = """
    fun main(a) {
      p = null;
      c = a + a;
      d = c * 2;
      if (d == 7) {
        deref(p);
      }
      return 0;
    }
    """
    pdg, checker, cands = _candidates(src)
    assert cands
    triage = CandidateTriage(pdg, checker)
    assert triage.decide(cands[0]).verdict is TriageVerdict.PROVEN_INFEASIBLE


def test_triage_proves_infeasible_antisymmetry():
    src = """
    fun main(c, d) {
      p = null;
      if (c < d) {
        if (d < c) {
          deref(p);
        }
      }
      return 0;
    }
    """
    pdg, checker, cands = _candidates(src)
    assert cands
    triage = CandidateTriage(pdg, checker)
    assert triage.decide(cands[0]).verdict is TriageVerdict.PROVEN_INFEASIBLE


def test_triage_defers_to_smt_when_unsure():
    src = """
    fun main(a) {
      p = null;
      if (a > 20) {
        deref(p);
      }
      return 0;
    }
    """
    pdg, checker, cands = _candidates(src)
    assert cands
    triage = CandidateTriage(pdg, checker)
    assert triage.decide(cands[0]).verdict is TriageVerdict.NEEDS_SMT


def test_triage_verdicts_match_solver():
    """Every PROVEN_* verdict above agrees with the SMT engine."""
    for src in [
        "fun main(a) { p = null; deref(p); return 0; }",
        """fun main(a) { p = null;
           if (a > 6) { if (a < 3) { deref(p); } } return 0; }""",
        """fun main(a) { p = null;
           if (a > 20) { deref(p); } return 0; }""",
    ]:
        pdg = prepare_pdg(compile_source(src))
        checker = NullDereferenceChecker()
        triage = CandidateTriage(pdg, checker)
        solved = FusionEngine(pdg).analyze(NullDereferenceChecker())
        by_smt = {(r.candidate.source.index, r.candidate.sink.index):
                  r.feasible for r in solved.reports}
        for cand in collect_candidates(pdg, checker):
            decision = triage.decide(cand)
            if decision.verdict is TriageVerdict.NEEDS_SMT:
                continue
            key = (cand.source.index, cand.sink.index)
            expected = decision.verdict is TriageVerdict.PROVEN_FEASIBLE
            assert by_smt[key] == expected, (src, key, decision)
