"""Tests for incremental assumption-based solver sessions.

`SolverSession` (repro.smt.incremental) must be a drop-in for the
one-shot `SmtSolver.check` on every query of a group: same verdicts,
same `decided_in_preprocess` split, models that satisfy the constraints
— while actually reusing the persistent CNF (encoder hits, retained
clauses) across the group's queries.  See docs/solver.md.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (SatStatus, SessionStats, SmtSolver, SmtStatus,
                       SolverConfig, SolverSession, TermManager)
from repro.smt.semantics import evaluate
from strategies import bool_terms, make_manager


class TestSessionStats:
    def test_merge_is_additive(self):
        a = SessionStats(1, 2, 3, 4, 5)
        b = SessionStats(10, 20, 30, 40, 50)
        a.merge(b)
        assert a.as_tuple() == (11, 22, 33, 44, 55)

    def test_tuple_roundtrip(self):
        stats = SessionStats(1, 2, 3, 4, 5)
        assert SessionStats.from_tuple(stats.as_tuple()) == stats

    def test_snapshot_is_independent(self):
        stats = SessionStats(sessions=1)
        copy = stats.snapshot()
        stats.sessions += 1
        assert copy.sessions == 1


class TestSessionLifecycle:
    def test_open_counts_a_session(self):
        stats = SessionStats()
        SolverSession(TermManager(), stats=stats)
        SolverSession(TermManager(), stats=stats)
        assert stats.sessions == 2

    def test_closed_session_rejects_use(self):
        manager = TermManager()
        session = SolverSession(manager)
        x = manager.bool_var("x")
        session.close()
        assert session.closed
        for call in (lambda: session.check([x]),
                     lambda: session.assume(x),
                     lambda: session.assert_permanent(x),
                     lambda: session.solve()):
            with pytest.raises(RuntimeError):
                call()

    def test_low_level_assume_solve(self):
        manager = TermManager()
        session = SolverSession(manager)
        x = manager.bv_var("x", 4)
        five = manager.bv_const(5, 4)
        session.assert_permanent(manager.ule(x, five))  # x <= 5 always
        hi = session.assume(manager.ult(five, x))       # 5 < x
        lo = session.assume(manager.eq(x, manager.bv_const(3, 4)))
        assert session.solve([hi]).status is SatStatus.UNSAT
        assert session.solve([lo]).status is SatStatus.SAT
        # The earlier UNSAT-under-assumptions answer is not permanent.
        assert session.solve([hi]).status is SatStatus.UNSAT
        assert session.solve([]).status is SatStatus.SAT


class TestSessionReuse:
    def test_shared_structure_hits_the_encoder_cache(self):
        # use_preprocess=False forces both queries through the CNF stage
        # (the equisatisfiable pipeline would decide these outright).
        manager = TermManager()
        stats = SessionStats()
        session = SolverSession(manager,
                                config=SolverConfig(use_preprocess=False),
                                stats=stats)
        x = manager.bv_var("x", 8)
        y = manager.bv_var("y", 8)
        shared = manager.bvadd(manager.bvmul(x, y), y)
        q1 = manager.ult(shared, manager.bv_const(200, 8))
        q2 = manager.ult(manager.bv_const(10, 8), shared)
        first = session.check([q1])
        second = session.check([q2])
        assert first.status is SmtStatus.SAT
        assert second.status is SmtStatus.SAT
        assert stats.encoder_hits > 0, stats
        assert stats.assumption_solves == 2
        assert stats.reused_clauses > 0

    def test_unsat_query_does_not_poison_the_session(self):
        manager = TermManager()
        session = SolverSession(manager,
                                config=SolverConfig(use_preprocess=False))
        x = manager.bv_var("x", 8)
        zero = manager.bv_const(0, 8)
        contradiction = manager.and_(manager.eq(x, zero),
                                     manager.not_(manager.eq(x, zero)))
        assert session.check([contradiction]).status is SmtStatus.UNSAT
        assert session.check(
            [manager.eq(x, zero)]).status is SmtStatus.SAT


class TestSessionVsOneShot:
    """Property: per query, `SolverSession.check` returns the same
    verdict and preprocess decision as a fresh `SmtSolver.check`, with
    a model that satisfies the constraints — across several queries in
    one session (interleaved SAT/UNSAT exercises learned-clause
    retention end to end)."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_check_agrees_with_fresh_solver(self, data):
        manager, bv_vars, bool_vars = make_manager()
        terms = bool_terms(manager, bv_vars, bool_vars)
        session = SolverSession(manager)
        queries = data.draw(st.lists(
            st.lists(terms, min_size=1, max_size=3),
            min_size=2, max_size=5))
        for constraints in queries:
            fresh = SmtSolver(manager).check(constraints)
            inc = session.check(constraints, want_model=True)
            assert inc.status is fresh.status
            assert inc.decided_in_preprocess == fresh.decided_in_preprocess
            if inc.status is SmtStatus.SAT and not inc.decided_in_preprocess:
                # Variables rewritten away (no completion step needed —
                # any value satisfies) default to 0, the idiom of
                # tests/test_smt_solver.py.
                model = dict(inc.model)
                for var in bv_vars + bool_vars:
                    model.setdefault(var, 0)
                for constraint in constraints:
                    assert evaluate(constraint, model) == 1


class TestEngineIntegration:
    def test_incremental_fusion_matches_and_reuses(self):
        from repro.bench import SubjectSpec, generate_subject
        from repro.checkers import NullDereferenceChecker
        from repro.fusion import (FusionConfig, FusionEngine,
                                  GraphSolverConfig, prepare_pdg)

        spec = SubjectSpec("inc-int", seed=13, num_functions=8, layers=3,
                           avg_stmts=6, call_fanout=2, null_bugs=(2, 1, 1))
        pdg = prepare_pdg(generate_subject(spec).program)
        checker = NullDereferenceChecker()
        base = FusionEngine(pdg).analyze(checker)
        engine = FusionEngine(pdg, FusionConfig(
            solver=GraphSolverConfig(incremental=True)))
        result = engine.analyze(checker)
        assert [(r.feasible, r.decided_in_preprocess)
                for r in result.reports] == \
            [(r.feasible, r.decided_in_preprocess) for r in base.reports]
        stats = engine.solver.session_stats
        assert stats.sessions > 0
        assert stats.assumption_solves > 0
