"""Differential suite: parallel execution is report-identical to the seed
sequential driver.

The query scheduler's contract (`repro.exec.scheduler`) is that every
feasibility query is a pure function of ``(PDG, candidate, engine
config)`` and that outcomes are assembled by candidate index.  These
tests pin that contract across fifty fuzzed programs: for each one, the
BugReport list produced with ``jobs=2`` and ``jobs=4`` must equal the
seed sequential run in *every* program-visible field — order,
feasibility, preprocess decision, and witness — for both Fusion and
Pinpoint, on both pool backends.
"""

import os

import pytest

from repro.baselines import PinpointEngine
from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.exec import ExecConfig
from repro.fusion import (FusionConfig, FusionEngine, GraphSolverConfig,
                          prepare_pdg)

FUZZ_SEEDS = list(range(50))

#: Seeds with interesting shapes for the (slower) process/Pinpoint passes.
SMALL_SEEDS = [0, 7, 17, 23, 41]


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def fuzz_pdg(seed: int):
    spec = SubjectSpec("fuzz-parallel", seed=seed, num_functions=6,
                       layers=3, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    return prepare_pdg(generate_subject(spec).program)


def fusion_with_witness(pdg):
    return FusionEngine(pdg, FusionConfig(
        solver=GraphSolverConfig(want_model=True)))


def canonical(result):
    """Every program-visible report field, in report order."""
    return [(report.checker,
             tuple((step.vertex.index, step.frame.fid)
                   for step in report.candidate.path.steps),
             report.feasible,
             report.decided_in_preprocess,
             tuple(sorted(report.witness.items())))
            for report in result.reports]


def run_stats(result):
    return (result.candidates, result.smt_queries,
            result.decided_in_preprocess, result.unknown_queries)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fusion_thread_pool_matches_sequential(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    sequential = fusion_with_witness(pdg).analyze(checker)
    assert sequential.candidates > 0, "fuzz spec generated no candidates"
    expected = canonical(sequential)
    for jobs in (2, 4):
        parallel = fusion_with_witness(pdg).analyze(
            checker, exec_config=ExecConfig(jobs=jobs, backend="thread"))
        assert canonical(parallel) == expected
        assert run_stats(parallel) == run_stats(sequential)


@pytest.mark.parametrize("seed", SMALL_SEEDS)
def test_pinpoint_thread_pool_matches_sequential(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    sequential = PinpointEngine(pdg).analyze(checker)
    parallel = PinpointEngine(pdg).analyze(
        checker, exec_config=ExecConfig(jobs=4, backend="thread"))
    assert canonical(parallel) == canonical(sequential)
    assert run_stats(parallel) == run_stats(sequential)


@pytest.mark.parametrize("seed", SMALL_SEEDS[:3])
def test_process_pool_matches_sequential(seed):
    """Workers re-collect candidates from the pickled PDG; indices and
    verdicts must still line up with the parent's sequential run."""
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    sequential = fusion_with_witness(pdg).analyze(checker)
    parallel = fusion_with_witness(pdg).analyze(
        checker, exec_config=ExecConfig(jobs=2, backend="process"))
    assert canonical(parallel) == canonical(sequential)
    assert run_stats(parallel) == run_stats(sequential)


def test_pinpoint_process_pool_matches_sequential():
    pdg = fuzz_pdg(11)
    checker = NullDereferenceChecker()
    sequential = PinpointEngine(pdg).analyze(checker)
    parallel = PinpointEngine(pdg).analyze(
        checker, exec_config=ExecConfig(jobs=2, backend="process"))
    assert canonical(parallel) == canonical(sequential)


def test_single_query_batches_are_deterministic():
    """batch_size=1 with jobs=4 maximizes completion-order shuffle; two
    runs must still be identical to each other and to the seed loop."""
    pdg = fuzz_pdg(29)
    checker = NullDereferenceChecker()
    sequential = fusion_with_witness(pdg).analyze(checker)
    runs = [fusion_with_witness(pdg).analyze(
                checker, exec_config=ExecConfig(jobs=4, backend="thread",
                                                batch_size=1))
            for _ in range(2)]
    assert canonical(runs[0]) == canonical(runs[1]) == canonical(sequential)


def test_serial_backend_is_the_degenerate_case():
    """``--jobs 1`` (and backend=serial at any job count) takes the seed
    sequential path; Table-3/Figure-11 semantics are untouched."""
    pdg = fuzz_pdg(3)
    checker = NullDereferenceChecker()
    sequential = fusion_with_witness(pdg).analyze(checker)
    jobs1 = fusion_with_witness(pdg).analyze(
        checker, exec_config=ExecConfig(jobs=1))
    serial = fusion_with_witness(pdg).analyze(
        checker, exec_config=ExecConfig(jobs=8, backend="serial"))
    assert canonical(jobs1) == canonical(serial) == canonical(sequential)


@pytest.mark.skipif(_cpu_count() < 2,
                    reason="wall-time speedup needs >= 2 CPUs")
def test_process_pool_speedup_on_multicore():
    """On a multi-core box, 4 process workers must beat sequential wall
    time on a query-heavy subject (guarded: CI runners with one core
    cannot demonstrate a speedup, only overhead)."""
    import time

    spec = SubjectSpec("speedup", seed=5, num_functions=24, layers=4,
                       avg_stmts=8, call_fanout=2, null_bugs=(3, 2, 2))
    pdg = prepare_pdg(generate_subject(spec).program)
    checker = NullDereferenceChecker()

    t0 = time.perf_counter()
    sequential = PinpointEngine(pdg).analyze(checker)
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = PinpointEngine(pdg).analyze(
        checker, exec_config=ExecConfig(jobs=4, backend="process"))
    t_par = time.perf_counter() - t0

    assert canonical(parallel) == canonical(sequential)
    assert t_par < t_seq, (t_par, t_seq)
