"""Soak suite: the daemon under concurrent, faulty, multi-tenant load.

Eight concurrent clients interleave edits and analyses across two
tenants and every response must be (a) present — unique request ids,
zero lost responses, (b) correct — findings byte-identical to one of
the tenant's precomputed program variants, and (c) isolated — no
finding ever names another tenant's functions and queue depth never
exceeds the admission bound.  A second storm runs with an injected
worker crash plan (a real SIGKILL under the process backend) and the
same zero-lost-responses bar; a third runs under a seeded store-fault
plan (the CI chaos matrix pins the seeds via ``REPRO_FAULT_SEEDS``).
"""

import asyncio
import json
import os
import random
import tempfile

import pytest

from repro.engine import AnalysisSession, findings_payload
from repro.exec import FaultPlan
from repro.exec.scheduler import _HAS_FORK
from repro.serve import OVERLOADED, ServeApp, ServeConfig

CLIENTS = 8
OPS_PER_CLIENT = 5
TENANTS = ("alpha", "beta")

FAULT_SEEDS = [int(seed) for seed in
               os.environ.get("REPRO_FAULT_SEEDS", "3").split(",")]


def tenant_source(prefix: str, flipped: bool) -> str:
    """One tenant's program; ``flipped`` turns the bug infeasible while
    keeping every interface identical."""
    guard = "c < c" if flipped else "c < d"
    return f"""
fun {prefix}_bar(x) {{
  y = x * 2;
  return y;
}}
fun {prefix}_main(a, b) {{
  p = null;
  c = {prefix}_bar(a);
  d = {prefix}_bar(b);
  if ({guard}) {{ deref(p); }}
  return 0;
}}
"""


def expected_findings(prefix: str) -> dict[bool, str]:
    """Canonical findings bytes for both variants of one tenant."""
    payloads = {}
    for flipped in (False, True):
        session = AnalysisSession(tenant_source(prefix, flipped))
        result = session.analyze("null-deref")
        payloads[flipped] = json.dumps(findings_payload(result))
    return payloads


async def rpc_with_retry(app: ServeApp, request: dict,
                         responses: dict) -> dict:
    """Send one request, retrying on 429 — under overload the client
    backs off, it never loses the request."""
    for _ in range(200):
        envelope = await app.handle(request)
        error = envelope.get("error")
        if error is not None and error["code"] == OVERLOADED:
            await asyncio.sleep(0.02)
            continue
        assert envelope["id"] not in responses, "duplicate response id"
        responses[envelope["id"]] = envelope
        return envelope
    raise AssertionError("request starved by admission control")


async def soak(app: ServeApp, expected: dict) -> dict:
    responses: dict = {}

    for tenant in TENANTS:
        init = await rpc_with_retry(app, {
            "jsonrpc": "2.0", "id": f"init-{tenant}",
            "method": "initialize",
            "params": {"tenant": tenant,
                       "source": tenant_source(tenant, False)}},
            responses)
        assert "result" in init, init.get("error")

    async def client(client_id: int) -> None:
        rng = random.Random(client_id)
        tenant = TENANTS[client_id % len(TENANTS)]
        for op in range(OPS_PER_CLIENT):
            request_id = f"c{client_id}-{op}"
            if rng.random() < 0.4:
                flipped = rng.random() < 0.5
                envelope = await rpc_with_retry(app, {
                    "jsonrpc": "2.0", "id": request_id,
                    "method": "update",
                    "params": {"tenant": tenant,
                               "source": tenant_source(tenant,
                                                       flipped)}},
                    responses)
                assert "result" in envelope, envelope.get("error")
            else:
                envelope = await rpc_with_retry(app, {
                    "jsonrpc": "2.0", "id": request_id,
                    "method": "analyze",
                    "params": {"tenant": tenant}}, responses)
                assert "result" in envelope, envelope.get("error")
                findings = json.dumps(envelope["result"]["findings"])
                # Correct: the response matches one of this tenant's two
                # program variants (another client may have edited it
                # concurrently; per-tenant serialization makes the set
                # of valid answers exactly these two).
                assert findings in set(expected[tenant].values()), \
                    f"{tenant}: unexpected findings {findings}"
                # Isolated: never another tenant's functions.
                for other in TENANTS:
                    if other != tenant:
                        assert f"{other}_" not in findings

    await asyncio.gather(*(client(i) for i in range(CLIENTS)))

    # Zero lost responses: every request id is answered exactly once.
    expected_ids = {f"init-{t}" for t in TENANTS} | {
        f"c{i}-{op}" for i in range(CLIENTS)
        for op in range(OPS_PER_CLIENT)}
    assert set(responses) == expected_ids

    snapshot = (await app.handle({
        "jsonrpc": "2.0", "id": "tel", "method": "telemetry",
        "params": {}}))["result"]
    serve = snapshot["serve"]
    assert serve["sessions_alive"] == len(TENANTS)
    assert serve["queue_depth"] == 0
    assert serve["queue_peak"] <= app.config.max_queue
    return snapshot


def test_soak_two_tenants_eight_clients():
    expected = {t: expected_findings(t) for t in TENANTS}

    async def main():
        with tempfile.TemporaryDirectory() as root:
            app = ServeApp(ServeConfig(cache_root=root, workers=4,
                                       max_queue=4))
            try:
                snapshot = await soak(app, expected)
                # The warm path did real work: verdicts were replayed
                # across requests, and overload (if any) was absorbed by
                # client retries, never by dropping requests.
                assert snapshot["serve"]["replayed_verdicts"] > 0
            finally:
                app.close()

    asyncio.run(main())


def test_soak_with_injected_worker_sigkill():
    """Same storm, but every scheduler run's first batch crashes its
    worker once — a real SIGKILL under the process backend, an injected
    WorkerCrash under thread — and the retry ladder must still deliver
    every response with correct verdicts."""
    expected = {t: expected_findings(t) for t in TENANTS}
    backend = "process" if _HAS_FORK else "thread"
    plan = FaultPlan(crash_on_batch=frozenset({0}), crash_times=1)

    async def main():
        with tempfile.TemporaryDirectory() as root:
            app = ServeApp(ServeConfig(cache_root=root, workers=4,
                                       max_queue=8, jobs=2,
                                       backend=backend,
                                       fault_plan=plan))
            try:
                snapshot = await soak(app, expected)
                # At least the cold analyses hit the crash plan; the
                # scheduler recovered by requeueing onto a fresh pool.
                faults = snapshot["faults"]
                assert faults["requeued_batches"] + \
                    faults["batch_retries"] > 0
                assert snapshot["serve"]["errors"] == 0
            finally:
                app.close()

    asyncio.run(main())


def test_query_latency_on_hot_tenant():
    """The demand-query latency contract (docs/queries.md): on a hot
    ~2k-line tenant, ``query`` RPCs answer under 100 ms p95.  The one
    full analyze that warms the tenant is excluded — it is exactly the
    cost the demand API exists to avoid."""
    import time

    from repro.bench import SubjectSpec, generate_subject
    from repro.checkers import NullDereferenceChecker
    from repro.query import resolve_sink_sites

    spec = SubjectSpec("soak-query", seed=11, num_functions=80,
                       layers=4, avg_stmts=8, call_fanout=2,
                       null_bugs=(3, 3, 3))
    source = generate_subject(spec).source
    assert source.count("\n") >= 2000, "tenant shrank below 2k lines"
    probe = AnalysisSession(source)
    checker = NullDereferenceChecker()
    lines = [number for number in range(1, source.count("\n") + 2)
             if resolve_sink_sites(probe.pdg, source, checker, number)]
    assert lines, "soak tenant lost its sinks"

    async def main():
        with tempfile.TemporaryDirectory() as root:
            app = ServeApp(ServeConfig(cache_root=root, workers=2))
            try:
                responses: dict = {}
                init = await rpc_with_retry(app, {
                    "jsonrpc": "2.0", "id": "init", "method":
                    "initialize",
                    "params": {"tenant": "hot", "source": source}},
                    responses)
                assert "result" in init, init.get("error")
                # Warm the tenant once (excluded from the latency bar).
                warm = await rpc_with_retry(app, {
                    "jsonrpc": "2.0", "id": "warm", "method": "analyze",
                    "params": {"tenant": "hot"}}, responses)
                assert "result" in warm, warm.get("error")

                samples = []
                for op in range(40):
                    line = lines[op % len(lines)]
                    start = time.monotonic()
                    envelope = await rpc_with_retry(app, {
                        "jsonrpc": "2.0", "id": f"q{op}",
                        "method": "query",
                        "params": {"tenant": "hot", "sink": line}},
                        responses)
                    samples.append(time.monotonic() - start)
                    assert "result" in envelope, envelope.get("error")
                    result = envelope["result"]
                    assert result["region_nodes"] < result["pdg_nodes"]
                samples.sort()
                p95 = samples[max(0, int(0.95 * len(samples)) - 1)]
                assert p95 < 0.100, \
                    f"query p95 {p95 * 1000:.1f} ms breaks the 100 ms " \
                    f"contract (samples: {[round(s, 4) for s in samples]})"

                snapshot = (await app.handle({
                    "jsonrpc": "2.0", "id": "tel",
                    "method": "telemetry", "params": {}}))["result"]
                query = snapshot["query"]
                assert query["demand_queries"] == 40
                # Repeats hit the per-pair memo instead of re-walking.
                assert query["region_cache_hits"] >= 40 - len(lines)
            finally:
                app.close()

    asyncio.run(main())


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_soak_with_seeded_store_faults(seed):
    """Same storm under a seeded store-fault plan (EIO, torn writes,
    bit flips): faulted store I/O may cost re-solves or quarantines,
    never a wrong verdict, a lost response, or a dead daemon."""
    expected = {t: expected_findings(t) for t in TENANTS}
    plan = FaultPlan.seeded(seed, num_queries=0, store_ops=6)
    assert not plan.is_empty

    async def main():
        with tempfile.TemporaryDirectory() as root:
            app = ServeApp(ServeConfig(cache_root=root, workers=4,
                                       max_queue=8, fault_plan=plan))
            try:
                snapshot = await soak(app, expected)
                assert snapshot["serve"]["errors"] == 0
                store = snapshot["store"]
                # The seeded plan fired at least one store fault, and
                # every one degraded to a counted miss or quarantine.
                assert store["io_errors"] + store["corrupt_entries"] \
                    + store["quarantined"] >= 1, store
            finally:
                app.close()

    asyncio.run(main())
