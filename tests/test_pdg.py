"""Tests for PDG construction (Definition 3.1 / Figure 5)."""

import pytest

from repro.lang import Branch, Call, compile_source
from repro.pdg import (CallGraph, EdgeKind, build_pdg, pdg_to_dot,
                       unroll_recursion)

FIGURE1 = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) {
    return p;
  }
  return 0;
}
"""


@pytest.fixture
def fig1_pdg():
    return build_pdg(compile_source(FIGURE1))


class TestVertices:
    def test_every_statement_is_a_vertex(self, fig1_pdg):
        program = fig1_pdg.program
        total = sum(f.size() for f in program.functions.values())
        assert fig1_pdg.num_vertices == total

    def test_def_of_finds_definitions(self, fig1_pdg):
        vertex = fig1_pdg.def_of("bar", "y")
        assert repr(vertex.stmt) == "y = x * 2"

    def test_return_vertices_registered(self, fig1_pdg):
        assert fig1_pdg.return_vertex("bar") is not None
        assert fig1_pdg.return_vertex("foo") is not None

    def test_param_vertices_are_identities(self, fig1_pdg):
        params = fig1_pdg.param_vertices("foo")
        assert [p.var.name for p in params] == ["a", "b"]


class TestDataEdges:
    def test_local_def_use_edge(self, fig1_pdg):
        z = fig1_pdg.def_of("bar", "z")
        preds = fig1_pdg.data_preds(z)
        assert len(preds) == 1
        assert preds[0].src.var.name == "y"
        assert preds[0].kind is EdgeKind.LOCAL

    def test_call_edges_labelled_per_site(self, fig1_pdg):
        x_param = fig1_pdg.def_of("bar", "x")
        call_edges = [e for e in fig1_pdg.data_preds(x_param)
                      if e.kind is EdgeKind.CALL]
        assert len(call_edges) == 2  # called from two sites
        labels = {e.callsite for e in call_edges}
        assert len(labels) == 2  # distinct parentheses

    def test_return_edges_to_each_receiver(self, fig1_pdg):
        ret = fig1_pdg.return_vertex("bar")
        succs = [e for e in fig1_pdg.data_succs(ret)
                 if e.kind is EdgeKind.RETURN]
        receivers = {e.dst.var.name for e in succs}
        assert receivers == {"c", "d"}

    def test_call_and_return_share_callsite_label(self, fig1_pdg):
        x_param = fig1_pdg.def_of("bar", "x")
        ret = fig1_pdg.return_vertex("bar")
        call_sites = {e.callsite for e in fig1_pdg.data_preds(x_param)
                      if e.kind is EdgeKind.CALL}
        return_sites = {e.callsite for e in fig1_pdg.data_succs(ret)
                        if e.kind is EdgeKind.RETURN}
        assert call_sites == return_sites

    def test_extern_call_links_actual_to_receiver(self):
        pdg = build_pdg(compile_source(
            "fun f(a) { x = lib(a); return x; }"))
        x = pdg.def_of("f", "x")
        [edge] = pdg.data_preds(x)
        assert edge.kind is EdgeKind.EXTERN
        assert edge.src.var.name == "a"

    def test_constants_produce_no_edges(self, fig1_pdg):
        p = fig1_pdg.def_of("foo", "p")
        assert fig1_pdg.data_preds(p) == []


class TestControlEdges:
    def test_branch_body_depends_on_branch(self, fig1_pdg):
        foo = fig1_pdg.program.functions["foo"]
        branch = next(s for s in foo.statements() if isinstance(s, Branch))
        inner = branch.body[0]
        parent = fig1_pdg.control_parent(fig1_pdg.vertex_of(inner))
        assert parent is fig1_pdg.vertex_of(branch)

    def test_top_level_statements_have_no_parent(self, fig1_pdg):
        p = fig1_pdg.def_of("foo", "p")
        assert fig1_pdg.control_parent(p) is None

    def test_control_chain_walks_nesting(self):
        pdg = build_pdg(compile_source("""
        fun f(a, b) {
          x = 0;
          if (a < 1) {
            if (b < 1) { x = 1; }
          }
          return x;
        }
        """))
        x1 = pdg.def_of("f", "x.1")
        chain = list(pdg.control_chain(x1))
        assert len(chain) == 2

    def test_stats_shape(self, fig1_pdg):
        stats = fig1_pdg.stats()
        assert stats["functions"] == 2
        assert stats["callsites"] == 2
        assert stats["vertices"] > 0 and stats["data_edges"] > 0


class TestRecursionHandling:
    REC = """
    fun f(n) {
      if (n < 1) { return 0; }
      m = f(n - 1);
      return m + 1;
    }
    fun main(k) {
      r = f(k);
      return r;
    }
    """

    def test_build_rejects_recursion(self):
        with pytest.raises(ValueError):
            build_pdg(compile_source(self.REC))

    def test_unroll_removes_cycles(self):
        prog = unroll_recursion(compile_source(self.REC), depth=2)
        assert not CallGraph(prog).recursive_functions()
        assert "f%1" in prog.functions

    def test_unrolled_program_builds(self):
        prog = unroll_recursion(compile_source(self.REC), depth=2)
        pdg = build_pdg(prog)
        assert pdg.num_vertices > 0

    def test_deepest_level_calls_extern(self):
        prog = unroll_recursion(compile_source(self.REC), depth=2)
        deepest = prog.functions["f%1"]
        callees = {s.callee for s in deepest.statements()
                   if isinstance(s, Call)}
        assert callees == {"f%cut"}
        assert "f%cut" in prog.externs

    def test_mutual_recursion_unrolled(self):
        prog = unroll_recursion(compile_source("""
        fun even(n) {
          if (n < 1) { return 1; }
          r = odd(n - 1);
          return r;
        }
        fun odd(n) {
          if (n < 1) { return 0; }
          r = even(n - 1);
          return r;
        }
        """), depth=2)
        assert not CallGraph(prog).recursive_functions()
        assert {"even", "odd", "even%1", "odd%1"} <= set(prog.functions)

    def test_non_recursive_program_unchanged(self):
        prog = compile_source(FIGURE1)
        assert unroll_recursion(prog) is prog


class TestCallGraph:
    def test_topological_order_callees_first(self):
        prog = compile_source(FIGURE1)
        order = CallGraph(prog).topological_order()
        assert order.index("bar") < order.index("foo")

    def test_callers(self):
        graph = CallGraph(compile_source(FIGURE1))
        assert graph.callers("bar") == {"foo"}

    def test_sccs_partition_functions(self):
        graph = CallGraph(compile_source(FIGURE1))
        members = [m for scc in graph.sccs() for m in scc]
        assert sorted(members) == ["bar", "foo"]


class TestDot:
    def test_dot_contains_call_labels(self, fig1_pdg):
        dot = pdg_to_dot(fig1_pdg)
        assert "(1" in dot or "(2" in dot
        assert "style=dashed" in dot  # control dependence
