"""Tests for preprocessing with protected interface variables.

Algorithm 6 preprocesses per-function templates whose params, returns,
receivers, and branch conditions are referenced by *other* templates'
bindings and by requirements — the pipeline must simplify around them
without eliminating them.
"""

import pytest

from repro.smt import (Preprocessor, TermManager, Verdict, evaluate)


@pytest.fixture
def mgr():
    return TermManager()


def run(mgr, constraints, protected, **kwargs):
    return Preprocessor(mgr, protected=protected, **kwargs).run(constraints)


class TestEqualityProtection:
    def test_protected_var_not_substituted_away(self, mgr):
        x, ret = mgr.bv_var("x", 8), mgr.bv_var("ret", 8)
        # The template: ret = x * 2 via an intermediate.
        y = mgr.bv_var("y", 8)
        constraints = [
            mgr.eq(y, mgr.bvmul(x, mgr.bv_const(2, 8))),
            mgr.eq(ret, y),
        ]
        result = run(mgr, constraints, protected={x, ret})
        # y is eliminated; the relation between ret and x survives.
        residual_vars = set()
        for c in result.constraints:
            residual_vars |= {v.name for v in c.free_vars()}
        assert "ret" in residual_vars and "x" in residual_vars
        assert "y" not in residual_vars

    def test_unprotected_behaviour_unchanged(self, mgr):
        x, y = mgr.bv_var("x", 8), mgr.bv_var("y", 8)
        result = run(mgr, [mgr.eq(y, x)], protected=set())
        assert result.constraints == []


class TestConstantProtection:
    def test_protected_constant_binding_kept(self, mgr):
        ret = mgr.bv_var("ret", 8)
        result = run(mgr, [mgr.eq(ret, mgr.bv_const(7, 8))],
                     protected={ret})
        # The binding must survive for external consumers of `ret`.
        assert len(result.constraints) == 1
        assert result.verdict is Verdict.UNKNOWN

    def test_protected_bool_assertion_kept(self, mgr):
        cond = mgr.bool_var("cond")
        result = run(mgr, [cond], protected={cond})
        assert result.constraints == [cond]


class TestUnconstrainedProtection:
    def test_protected_var_never_treated_unconstrained(self, mgr):
        param = mgr.bv_var("param", 8)
        other = mgr.bv_var("other", 8)
        # param + other == 0 would normally fall to unconstrained
        # elimination via either operand; with both protected it must stay.
        constraint = mgr.eq(mgr.bvadd(param, other), mgr.bv_const(0, 8))
        result = run(mgr, [constraint], protected={param, other},
                     enabled=("unconstrained",))
        assert result.verdict is Verdict.UNKNOWN
        assert len(result.constraints) == 1

    def test_unprotected_side_still_eliminated(self, mgr):
        param = mgr.bv_var("param", 8)
        temp = mgr.bv_var("temp", 8)
        constraint = mgr.eq(mgr.bvadd(param, temp), mgr.bv_const(0, 8))
        result = run(mgr, [constraint], protected={param},
                     enabled=("unconstrained", "constants"))
        # temp is free to absorb the constraint: decided SAT (the final
        # asserted fresh boolean is discharged by constant propagation).
        assert result.verdict is Verdict.SAT


class TestGaussianProtection:
    def test_pivot_never_protected(self, mgr):
        ret = mgr.bv_var("ret", 8)
        x = mgr.bv_var("x", 8)
        # ret + x = 5 with ret protected: the solver must pivot on x.
        constraint = mgr.eq(mgr.bvadd(ret, x), mgr.bv_const(5, 8))
        result = run(mgr, [constraint], protected={ret},
                     enabled=("gaussian",))
        residual_vars = set()
        for c in result.constraints:
            residual_vars |= {v.name for v in c.free_vars()}
        assert "x" not in residual_vars or "ret" in residual_vars

    def test_fully_protected_row_kept(self, mgr):
        a, b = mgr.bv_var("a", 8), mgr.bv_var("b", 8)
        constraint = mgr.eq(mgr.bvadd(a, b), mgr.bv_const(5, 8))
        result = run(mgr, [constraint], protected={a, b},
                     enabled=("gaussian",))
        assert len(result.constraints) == 1


class TestProbingProtection:
    def test_isolated_but_protected_constraint_kept(self, mgr):
        a, b = mgr.bv_var("a", 8), mgr.bv_var("b", 8)
        constraint = mgr.slt(a, b)
        result = run(mgr, [constraint], protected={a, b},
                     enabled=("probing",))
        assert result.constraints == [constraint]

    def test_isolated_unprotected_constraint_probed(self, mgr):
        a, b = mgr.bv_var("a", 8), mgr.bv_var("b", 8)
        result = run(mgr, [mgr.slt(a, b)], protected=set(),
                     enabled=("probing",))
        assert result.verdict is Verdict.SAT
        model = result.complete_model({})
        assert evaluate(mgr.slt(a, b), model) == 1


class TestEndToEndTemplateShape:
    def test_bar_template_reduces_to_quickpath_relation(self, mgr):
        """The paper's bar: local preprocessing with protected interface
        collapses y/z but keeps ret expressed over x."""
        x = mgr.bv_var("bar::x", 8)
        y = mgr.bv_var("bar::y", 8)
        z = mgr.bv_var("bar::z", 8)
        ret = mgr.bv_var("bar::%ret", 8)
        constraints = [
            mgr.eq(y, mgr.bvmul(x, mgr.bv_const(2, 8))),
            mgr.eq(z, y),
            mgr.eq(ret, z),
        ]
        result = run(mgr, constraints, protected={x, ret})
        # One surviving relation tying ret to x (e.g. ret = 2x).
        assert len(result.constraints) == 1
        [relation] = result.constraints
        names = {v.name for v in relation.free_vars()}
        assert names == {"bar::x", "bar::%ret"}
