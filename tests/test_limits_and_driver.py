"""Tests for resource budgets and the shared analysis driver."""

import time

import pytest

from repro.limits import (Budget, MemoryBudgetExceeded, TimeBudgetExceeded,
                          unlimited)
from repro.checkers import NullDereferenceChecker
from repro.fusion import prepare_pdg
from repro.lang import compile_source
from repro.smt.solver import SmtResult, SmtStatus
from repro.sparse.driver import run_analysis


class TestBudget:
    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        budget.check_time()
        budget.check_memory(10**12)

    def test_memory_budget_raises(self):
        budget = Budget(max_memory_units=100)
        budget.check_memory(100)
        with pytest.raises(MemoryBudgetExceeded):
            budget.check_memory(101)

    def test_time_budget_raises(self):
        budget = Budget(max_seconds=0.01)
        time.sleep(0.02)
        with pytest.raises(TimeBudgetExceeded):
            budget.check_time()

    def test_restart_clock(self):
        budget = Budget(max_seconds=10)
        time.sleep(0.01)
        before = budget.elapsed
        budget.restart_clock()
        assert budget.elapsed < before

    def test_unlimited_factory_returns_fresh_budgets(self):
        """unlimited() replaced the old module-level UNLIMITED singleton:
        each call owns a fresh clock, so one caller's restart_clock or
        elapsed reading cannot leak into another's."""
        a, b = unlimited(), unlimited()
        assert a is not b
        assert a.max_seconds is None and a.max_memory_units is None
        a.check_time()
        a.check_memory(10**12)
        time.sleep(0.01)
        b.restart_clock()
        assert a.elapsed > b.elapsed


SRC = """
fun f(a) {
  p = null;
  if (a > 20) { deref(p); }
  q = null;
  if (a < 10) { deref(q); }
  return 0;
}
"""


def make_driver_run(solve_fn, **kwargs):
    pdg = prepare_pdg(compile_source(SRC))
    return run_analysis(pdg, NullDereferenceChecker(), "test-engine",
                        solve_fn, lambda: (123, 45), **kwargs)


class TestDriver:
    def test_counts_candidates_and_queries(self):
        result = make_driver_run(lambda c: SmtResult(SmtStatus.SAT))
        assert result.candidates == 2
        assert result.smt_queries == 2
        assert len(result.bugs) == 2

    def test_unsat_filters_reports(self):
        result = make_driver_run(lambda c: SmtResult(SmtStatus.UNSAT))
        assert result.bugs == []
        assert len(result.reports) == 2

    def test_unknown_is_reported_soundy(self):
        # A query that exhausts its budget is reported as a potential bug
        # (the bug-finding convention: timeouts do not suppress reports).
        result = make_driver_run(lambda c: SmtResult(SmtStatus.UNKNOWN))
        assert len(result.bugs) == 2

    def test_memory_snapshot_recorded(self):
        result = make_driver_run(lambda c: SmtResult(SmtStatus.SAT))
        assert result.memory_units == 123
        assert result.condition_memory_units == 45

    def test_solver_exception_becomes_failure(self):
        def explode(candidate):
            raise MemoryBudgetExceeded("boom")

        result = make_driver_run(explode)
        assert result.failure == "memory"

    def test_time_budget_enforced_between_queries(self):
        def slow(candidate):
            time.sleep(0.05)
            return SmtResult(SmtStatus.SAT)

        result = make_driver_run(slow, budget=Budget(max_seconds=0.01))
        assert result.failure == "time"
        # Partial results are preserved.
        assert result.smt_queries >= 1

    def test_preprocess_decisions_counted(self):
        result = make_driver_run(
            lambda c: SmtResult(SmtStatus.SAT, decided_in_preprocess=True))
        assert result.decided_in_preprocess == 2

    def test_query_records_collected(self):
        records = []
        make_driver_run(lambda c: SmtResult(SmtStatus.SAT),
                        query_records=records)
        assert len(records) == 2
        assert all(r.status is SmtStatus.SAT for r in records)

    def test_unknown_queries_counted(self):
        result = make_driver_run(lambda c: SmtResult(SmtStatus.UNKNOWN))
        assert result.unknown_queries == 2
        assert ", 2 unknown" in result.summary()
        sat = make_driver_run(lambda c: SmtResult(SmtStatus.SAT))
        assert sat.unknown_queries == 0
        assert "unknown" not in sat.summary()


#: A query the preprocessor cannot settle and the SAT back end cannot
#: decide within a one-conflict budget: a multiplicative xor-factoring
#: gate guarding the dereference.
HARD_SRC = """
fun f(x, y, z, w) {
  p = null;
  a = x * y;
  b = z * w;
  c = a ^ b;
  d = (x | 1) * (z | 1);
  if (c == 171) { if (d == 77) { deref(p); } }
  return 0;
}
"""


class TestQueryMetrics:
    """Regressions for per-query record fields (Figure 11 inputs)."""

    def _run(self, conflict_limit):
        from repro.fusion import FusionConfig, FusionEngine, GraphSolverConfig
        from repro.smt.solver import SolverConfig

        pdg = prepare_pdg(compile_source(HARD_SRC))
        engine = FusionEngine(pdg, FusionConfig(solver=GraphSolverConfig(
            solver=SolverConfig(conflict_limit=conflict_limit))))
        return engine.analyze(NullDereferenceChecker()), engine.query_records

    def test_condition_nodes_populated(self):
        # Regression: QueryRecord.condition_nodes used to stay 0 because
        # SmtResult never carried the queried constraint-set size.
        result, records = self._run(conflict_limit=200_000)
        assert records, "no queries issued"
        assert all(record.condition_nodes > 0 for record in records)
        assert result.unknown_queries == 0

    def test_resource_limited_query_counts_as_unknown(self):
        # A one-conflict budget cannot decide the factoring gate: the
        # query lands UNKNOWN, is still reported (soundy), and the run
        # tracks it separately from proven-SAT bugs.
        result, records = self._run(conflict_limit=1)
        assert result.unknown_queries == 1
        assert [r.status for r in records] == [SmtStatus.UNKNOWN]
        assert len(result.bugs) == 1  # reported despite the timeout
        assert "1 unknown" in result.summary()
