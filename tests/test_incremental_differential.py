"""Differential suite: incremental sessions never change a report.

The acceptance contract of incremental assumption-based solving
(docs/solver.md) is that `--incremental` and `--no-incremental` runs
produce identical reports — same order, same verdicts, same preprocess
split — across job counts, pool backends, and both path-sensitive
engines.  Models under assumptions may legitimately differ, so this
suite runs with `want_model=False` (the bench default) and compares
every remaining program-visible field.
"""

import pytest

from repro.baselines.pinpoint import make_pinpoint
from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.exec import ExecConfig, Telemetry
from repro.fusion import (FusionConfig, FusionEngine, GraphSolverConfig,
                          prepare_pdg)

FUZZ_SEEDS = list(range(50))

#: Seeds with interesting shapes for the (slower) process/Pinpoint passes.
SMALL_SEEDS = [0, 7, 17, 23, 41]


def fuzz_pdg(seed: int):
    spec = SubjectSpec("fuzz-incremental", seed=seed, num_functions=6,
                       layers=3, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    return prepare_pdg(generate_subject(spec).program)


def fusion(pdg, incremental: bool):
    return FusionEngine(pdg, FusionConfig(
        solver=GraphSolverConfig(incremental=incremental)))


def canonical(result):
    """Every program-visible report field (no witnesses: want_model off)."""
    return [(report.checker,
             tuple((step.vertex.index, step.frame.fid)
                   for step in report.candidate.path.steps),
             report.feasible,
             report.decided_in_preprocess)
            for report in result.reports]


def run_stats(result):
    return (result.candidates, result.smt_queries,
            result.decided_in_preprocess, result.unknown_queries)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fusion_incremental_matches_one_shot(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    baseline = fusion(pdg, incremental=False).analyze(checker)
    assert baseline.candidates > 0, "fuzz spec generated no candidates"
    incremental = fusion(pdg, incremental=True).analyze(checker)
    assert canonical(incremental) == canonical(baseline)
    assert run_stats(incremental) == run_stats(baseline)


@pytest.mark.parametrize("seed", SMALL_SEEDS)
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_fusion_incremental_thread_pool_matches(seed, jobs):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    baseline = fusion(pdg, incremental=False).analyze(checker)
    parallel = fusion(pdg, incremental=True).analyze(
        checker, exec_config=ExecConfig(jobs=jobs, backend="thread"))
    assert canonical(parallel) == canonical(baseline)
    assert run_stats(parallel) == run_stats(baseline)


@pytest.mark.parametrize("seed", SMALL_SEEDS[:3])
def test_fusion_incremental_process_pool_matches(seed):
    """Grouped batches cross the process boundary: workers rebuild the
    per-batch group runner from the pickled spec and ship session-stat
    deltas back; verdicts must still match the one-shot sequential run."""
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    baseline = fusion(pdg, incremental=False).analyze(checker)
    parallel = fusion(pdg, incremental=True).analyze(
        checker, exec_config=ExecConfig(jobs=2, backend="process"))
    assert canonical(parallel) == canonical(baseline)
    assert run_stats(parallel) == run_stats(baseline)


@pytest.mark.parametrize("seed", SMALL_SEEDS)
def test_pinpoint_incremental_matches(seed):
    pdg = fuzz_pdg(seed)
    checker = NullDereferenceChecker()
    baseline = make_pinpoint(pdg, "").analyze(checker)
    incremental = make_pinpoint(pdg, "", incremental=True).analyze(checker)
    assert canonical(incremental) == canonical(baseline)
    assert run_stats(incremental) == run_stats(baseline)


def test_pinpoint_incremental_thread_pool_matches():
    pdg = fuzz_pdg(11)
    checker = NullDereferenceChecker()
    baseline = make_pinpoint(pdg, "").analyze(checker)
    parallel = make_pinpoint(pdg, "", incremental=True).analyze(
        checker, exec_config=ExecConfig(jobs=4, backend="thread"))
    assert canonical(parallel) == canonical(baseline)


def test_telemetry_reports_session_reuse():
    """On a multi-candidate subject the incremental run must actually
    go through sessions: assumption solves and encoder hits > 0 (the
    acceptance criterion of the reuse gate, in-process flavor)."""
    spec = SubjectSpec("inc-telemetry", seed=5, num_functions=10, layers=3,
                       avg_stmts=7, call_fanout=2, null_bugs=(2, 2, 2))
    pdg = prepare_pdg(generate_subject(spec).program)
    checker = NullDereferenceChecker()
    telemetry = Telemetry()
    fusion(pdg, incremental=True).analyze(checker, telemetry=telemetry)
    counters = telemetry.as_dict()["incremental"]
    assert counters["sessions"] > 0, counters
    assert counters["assumption_solves"] > 0, counters
    assert counters["encoder_hits"] > 0, counters


def test_telemetry_session_reuse_via_thread_pool():
    """Worker-side sessions feed the same counters through the
    scheduler's merge path."""
    spec = SubjectSpec("inc-telemetry", seed=5, num_functions=10, layers=3,
                       avg_stmts=7, call_fanout=2, null_bugs=(2, 2, 2))
    pdg = prepare_pdg(generate_subject(spec).program)
    checker = NullDereferenceChecker()
    telemetry = Telemetry()
    fusion(pdg, incremental=True).analyze(
        checker, exec_config=ExecConfig(jobs=2, backend="thread"),
        telemetry=telemetry)
    counters = telemetry.as_dict()["incremental"]
    assert counters["sessions"] > 0, counters
    assert counters["assumption_solves"] > 0, counters
