"""Chaos suite: a real ``repro serve`` process under kill -9 and store
faults.

Unlike tests/test_serve_recovery.py (in-process apps), these tests
exercise the full deployment shape: a subprocess daemon speaking
line-delimited JSON-RPC on stdio, SIGKILLed without warning, restarted
over the same cache root — the restart must serve the journaled tenant
with byte-identical findings and zero SMT queries.  The store-fault
matrix (CI chaos job; seeds pinned via ``REPRO_FAULT_SEEDS``) runs the
same protocol with injected store EIO/torn-write/bit-flip faults and
asserts the daemon survives and counts them in the schema /8 telemetry.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: CI matrix entries pin the seeds via REPRO_FAULT_SEEDS; locally a fixed
#: default keeps the run fast and deterministic.
FAULT_SEEDS = [int(seed) for seed in
               os.environ.get("REPRO_FAULT_SEEDS", "3").split(",")]

SOURCE = """
fun bar(x) {
  y = x * 2;
  return y;
}
fun main(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
"""


class ServeProcess:
    """One ``repro serve --stdio`` subprocess with a line-RPC client."""

    def __init__(self, cache_root: str, *extra_args: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") \
            + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             "--cache-root", cache_root, "--watchdog-interval", "0",
             *extra_args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=env, cwd=REPO_ROOT, text=True)
        self._next_id = 0

    def rpc(self, method: str, **params) -> dict:
        self._next_id += 1
        request = {"jsonrpc": "2.0", "id": self._next_id,
                   "method": method, "params": params}
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        assert line, f"daemon died answering {method!r}"
        envelope = json.loads(line)
        assert envelope["id"] == self._next_id
        return envelope

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def shutdown(self) -> None:
        envelope = self.rpc("shutdown")
        assert envelope["result"]["drained"]
        self.proc.stdin.close()
        assert self.proc.wait(timeout=30) == 0

    def reap(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


@pytest.fixture
def daemon_factory(tmp_path):
    spawned = []

    def spawn(*extra_args: str) -> ServeProcess:
        daemon = ServeProcess(str(tmp_path), *extra_args)
        spawned.append(daemon)
        return daemon

    yield spawn
    for daemon in spawned:
        daemon.reap()


def test_sigkill_restart_differential(daemon_factory):
    first = daemon_factory()
    init = first.rpc("initialize", tenant="t", source=SOURCE)
    assert "result" in init, init
    cold = first.rpc("analyze", tenant="t")["result"]
    assert cold["counters"]["smt_queries"] > 0
    first.sigkill()  # no drain, no clean marker — a real crash

    second = daemon_factory()
    listing = second.rpc("tenants")["result"]
    assert listing["recoverable"] == ["t"]
    warm = second.rpc("analyze", tenant="t")["result"]
    assert warm["counters"]["smt_queries"] == 0
    assert warm["counters"]["replayed_verdicts"] \
        == warm["counters"]["candidates"]
    assert json.dumps(warm["findings"]) == json.dumps(cold["findings"])
    telemetry = second.rpc("telemetry")["result"]
    assert telemetry["schema"] == "repro-exec-telemetry/10"
    assert telemetry["serve"]["sessions_recovered"] == 1
    assert telemetry["serve"]["recoveries_crash"] == 1
    second.shutdown()

    # Third generation: the drained restart recovers *clean*.
    third = daemon_factory()
    third.rpc("analyze", tenant="t")
    telemetry = third.rpc("telemetry")["result"]
    assert telemetry["serve"]["recoveries_clean"] == 1
    assert telemetry["serve"]["recoveries_crash"] == 0
    third.shutdown()


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_store_fault_matrix_never_kills_the_daemon(daemon_factory, seed):
    from repro.exec import FaultPlan

    plan = FaultPlan.seeded(seed, num_queries=0, store_ops=6)
    assert not plan.is_empty
    daemon = daemon_factory("--fault-plan", plan.describe())
    daemon.rpc("initialize", tenant="t", source=SOURCE)
    cold = daemon.rpc("analyze", tenant="t")["result"]
    warm = daemon.rpc("analyze", tenant="t")["result"]
    # Faulted store I/O may cost re-solves, never verdicts.
    assert json.dumps(warm["findings"]) == json.dumps(cold["findings"])
    telemetry = daemon.rpc("telemetry")["result"]
    assert telemetry["schema"] == "repro-exec-telemetry/10"
    store = telemetry["store"]
    assert {"corrupt_entries", "quarantined", "io_errors"} <= set(store)
    # The seeded plan fired at least one store fault by now.
    assert store["io_errors"] + store["corrupt_entries"] >= 1
    daemon.shutdown()


def test_client_disconnect_fault_is_counted(tmp_path):
    """The serve-level disconnect site: in-process HTTP client whose
    response is cut mid-send; the daemon counts it and keeps serving."""
    import asyncio

    from repro.exec import FaultPlan
    from repro.serve import ServeApp, ServeConfig
    from repro.serve.app import _serve_client

    async def main():
        app = ServeApp(ServeConfig(
            cache_root=str(tmp_path), watchdog_interval=0.0,
            fault_plan=FaultPlan(
                client_disconnect_on=frozenset({0}))))
        try:
            async def roundtrip(payload: dict) -> bytes:
                reader = asyncio.StreamReader()
                body = json.dumps(payload).encode()
                reader.feed_data(
                    b"POST /rpc HTTP/1.1\r\nContent-Length: "
                    + str(len(body)).encode() + b"\r\n\r\n" + body)
                reader.feed_eof()
                transport = _MemoryWriter()
                await _serve_client(app, reader, transport)
                return b"".join(transport.chunks)

            request = {"jsonrpc": "2.0", "id": 1, "method": "ping",
                       "params": {}}
            torn = await roundtrip(request)
            clean = await roundtrip(dict(request, id=2))
            assert len(torn) < len(clean)  # response 0 was cut short
            assert b'"pong": true' in clean
            assert app.telemetry.serve["client_disconnects"] == 1
        finally:
            app.close()

    class _MemoryWriter:
        def __init__(self):
            self.chunks = []

        def write(self, data: bytes) -> None:
            self.chunks.append(data)

        async def drain(self) -> None:
            pass

        def close(self) -> None:
            pass

        async def wait_closed(self) -> None:
            pass

    asyncio.run(main())
