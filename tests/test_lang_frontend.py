"""Tests for the lexer, parser, and surface AST."""

import pytest

from repro.lang import LexError, ParseError, parse, tokenize
from repro.lang.ast_nodes import (AssignStmt, BinExpr, CallExpr, ExprStmt,
                                  IfStmt, IntLit, Name, NullLit, ReturnStmt,
                                  UnaryExpr, WhileStmt)
from repro.lang.ir import BinOp
from repro.lang.lexer import TokenKind


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("fun iffy if")
        assert [t.kind for t in tokens[:3]] == [
            TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.KEYWORD]

    def test_maximal_munch_operators(self):
        tokens = tokenize("a <= b << c == d")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert ops == ["<=", "<<", "=="]

    def test_comments_ignored(self):
        tokens = tokenize("a # comment\nb // other\nc")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["a", "b", "c"]

    def test_line_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].loc.line == 1
        assert tokens[1].loc.line == 2
        assert tokens[1].loc.column == 3

    def test_illegal_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestParserDeclarations:
    def test_function_with_params(self):
        module = parse("fun f(a, b, c) { return a; }")
        [f] = module.functions
        assert f.name == "f" and f.params == ["a", "b", "c"]

    def test_extern_list(self):
        module = parse("extern gets, fopen;")
        assert [e.name for e in module.externs] == ["gets", "fopen"]

    def test_duplicate_params_rejected(self):
        with pytest.raises(ParseError):
            parse("fun f(a, a) { return 0; }")

    def test_junk_at_top_level_rejected(self):
        with pytest.raises(ParseError):
            parse("x = 1;")


class TestParserStatements:
    def test_assignment(self):
        [f] = parse("fun f() { x = 1 + 2; return x; }").functions
        assign = f.body[0]
        assert isinstance(assign, AssignStmt) and assign.target == "x"
        assert isinstance(assign.value, BinExpr)
        assert assign.value.op is BinOp.ADD

    def test_if_else_chain(self):
        src = """
        fun f(a) {
          if (a < 1) { x = 1; } else if (a < 2) { x = 2; } else { x = 3; }
          return x;
        }
        """
        [f] = parse(src).functions
        outer = f.body[0]
        assert isinstance(outer, IfStmt)
        [inner] = outer.else_body
        assert isinstance(inner, IfStmt)
        assert len(inner.else_body) == 1

    def test_while(self):
        [f] = parse("fun f(n) { while (n < 3) { n = n + 1; } return n; }"
                    ).functions
        loop = f.body[0]
        assert isinstance(loop, WhileStmt)
        assert isinstance(loop.body[0], AssignStmt)

    def test_bare_call_statement(self):
        [f] = parse("fun f(c) { send(c); return 0; }").functions
        stmt = f.body[0]
        assert isinstance(stmt, ExprStmt)
        assert isinstance(stmt.expr, CallExpr)

    def test_return_without_value(self):
        [f] = parse("fun f() { return; }").functions
        assert isinstance(f.body[0], ReturnStmt)
        assert f.body[0].value is None


class TestParserExpressions:
    @staticmethod
    def expr_of(src_expr):
        [f] = parse(f"fun f(a, b, c) {{ x = {src_expr}; return x; }}"
                    ).functions
        return f.body[0].value

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("a + b * c")
        assert expr.op is BinOp.ADD
        assert isinstance(expr.rhs, BinExpr) and expr.rhs.op is BinOp.MUL

    def test_precedence_cmp_over_logic(self):
        expr = self.expr_of("a < b && b < c")
        assert expr.op is BinOp.AND
        assert expr.lhs.op is BinOp.LT and expr.rhs.op is BinOp.LT

    def test_parentheses_override(self):
        expr = self.expr_of("(a + b) * c")
        assert expr.op is BinOp.MUL
        assert isinstance(expr.lhs, BinExpr) and expr.lhs.op is BinOp.ADD

    def test_comparison_does_not_chain(self):
        with pytest.raises(ParseError):
            self.expr_of("a < b < c;")

    def test_unary_ops(self):
        expr = self.expr_of("-a + !b")
        assert isinstance(expr.lhs, UnaryExpr) and expr.lhs.op == "-"
        assert isinstance(expr.rhs, UnaryExpr) and expr.rhs.op == "!"

    def test_null_literal(self):
        assert isinstance(self.expr_of("null"), NullLit)

    def test_call_with_nested_args(self):
        expr = self.expr_of("g(a + 1, h(b))")
        assert isinstance(expr, CallExpr) and expr.callee == "g"
        assert len(expr.args) == 2
        assert isinstance(expr.args[1], CallExpr)

    def test_associativity_left(self):
        expr = self.expr_of("a - b - c")
        assert expr.op is BinOp.SUB
        assert isinstance(expr.lhs, BinExpr)
        assert isinstance(expr.lhs.lhs, Name) and expr.lhs.lhs.ident == "a"

    def test_shift_precedence(self):
        expr = self.expr_of("a << 1 + 2")
        # '+' binds tighter than '<<'.
        assert expr.op is BinOp.SHL
        assert isinstance(expr.rhs, BinExpr) and expr.rhs.op is BinOp.ADD

    def test_int_literal(self):
        expr = self.expr_of("42")
        assert isinstance(expr, IntLit) and expr.value == 42
