"""Focused tests for the baseline engines' internals."""

from repro.baselines import InferConfig, InferEngine, PinpointEngine
from repro.baselines.pinpoint import make_pinpoint
from repro.checkers import NullDereferenceChecker, cwe23_checker
from repro.fusion import prepare_pdg
from repro.lang import compile_source
from repro.limits import Budget

FIGURE1 = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
"""


class TestSummaryCaching:
    def test_expansions_cached_across_queries(self):
        pdg = prepare_pdg(compile_source(FIGURE1 + """
        fun foo2(a, b) {
          q = null;
          c = bar(a);
          d = bar(b);
          if (c < d) { deref(q); }
          return 0;
        }
        """))
        engine = PinpointEngine(pdg)
        engine.analyze(NullDereferenceChecker())
        # bar's summary is cached once and reused by both foo and foo2.
        cached_functions = {key[0] for key in engine._summary_cache}
        assert "bar" in cached_functions

    def test_cached_nodes_accounted(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        engine = PinpointEngine(pdg)
        engine.analyze(NullDereferenceChecker())
        assert engine.cached_condition_nodes > 0
        total, conditions = engine._memory_snapshot()
        assert conditions >= engine.cached_condition_nodes
        assert total > conditions  # graph units included

    def test_cloning_multiplies_condition_size(self):
        # bar called twice: the expanded condition contains two renamed
        # copies of bar's return-value condition.
        pdg = prepare_pdg(compile_source(FIGURE1))
        engine = PinpointEngine(pdg)
        engine.analyze(NullDereferenceChecker())
        manager = engine.transformer.manager
        names = {v.payload for key, constraints in
                 engine._summary_cache.items()
                 for c in constraints for v in c.free_vars()}
        clones = {n for n in names if isinstance(n, str) and "@" in n}
        assert clones, "expected @site-renamed callee variables"


class TestAbstractionRefinement:
    def test_ar_reaches_same_verdicts(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        plain = PinpointEngine(pdg).analyze(NullDereferenceChecker())
        ar = make_pinpoint(pdg, "ar").analyze(NullDereferenceChecker())
        assert len(plain.bugs) == len(ar.bugs) == 1

    def test_ar_issues_more_queries_than_plain(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        plain_engine = PinpointEngine(pdg)
        plain_engine.analyze(NullDereferenceChecker())
        ar_engine = make_pinpoint(pdg, "ar")
        ar_engine.analyze(NullDereferenceChecker())
        assert ar_engine.smt.queries > plain_engine.smt.queries

    def test_ar_unsat_at_shallow_level_is_final(self):
        # The guard is locally contradictory: AR settles it at depth 0.
        pdg = prepare_pdg(compile_source("""
        fun f(a) {
          p = null;
          if (a != a) { deref(p); }
          return 0;
        }
        """))
        engine = make_pinpoint(pdg, "ar")
        result = engine.analyze(NullDereferenceChecker())
        assert result.bugs == []
        assert engine.smt.queries == 1


class TestQeVariant:
    def test_qe_fails_on_memory_with_tight_budget(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        engine = make_pinpoint(pdg, "qe",
                               budget=Budget(max_memory_units=2_000))
        result = engine.analyze(NullDereferenceChecker())
        assert result.failure == "memory"

    def test_qe_succeeds_with_generous_budget(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        engine = make_pinpoint(pdg, "qe",
                               budget=Budget(max_memory_units=10**9))
        result = engine.analyze(NullDereferenceChecker())
        assert result.failure is None
        assert len(result.bugs) == 1


class TestInferInternals:
    def test_summaries_computed_bottom_up(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        engine = InferEngine(pdg)
        engine.analyze(NullDereferenceChecker())
        assert "bar" in engine.summaries and "foo" in engine.summaries
        # Nullness dies through bar's arithmetic: no facts reach its
        # return under the null checker.
        assert engine.summaries["bar"].returns == set()

    def test_passthrough_summary_carries_param(self):
        pdg = prepare_pdg(compile_source(
            "fun id(v) { return v; }\n"
            "fun f() { p = null; q = id(p); deref(q); return 0; }"))
        engine = InferEngine(pdg)
        result = engine.analyze(NullDereferenceChecker())
        assert any(fact[0] == "param"
                   for fact in engine.summaries["id"].returns)
        assert len(result.bugs) == 1

    def test_dense_state_units_grow_with_program(self):
        small = prepare_pdg(compile_source(FIGURE1))
        engine_small = InferEngine(small)
        engine_small.analyze(NullDereferenceChecker())
        big = prepare_pdg(compile_source(FIGURE1 * 1))
        # Same program: deterministic accounting.
        engine_big = InferEngine(big)
        engine_big.analyze(NullDereferenceChecker())
        assert engine_small.state_units == engine_big.state_units > 0

    def test_hop_bound_configurable(self):
        src = ["fun l0() { p = null; return p; }"]
        for i in range(1, 4):
            src.append(f"fun l{i}() {{ q = l{i-1}(); return q; }}")
        src.append("fun top() { r = l3(); deref(r); return 0; }")
        pdg = prepare_pdg(compile_source("\n".join(src)))
        shallow = InferEngine(pdg, InferConfig(max_hops=2))
        assert len(shallow.analyze(NullDereferenceChecker()).bugs) == 0
        deep = InferEngine(pdg, InferConfig(max_hops=10))
        assert len(deep.analyze(NullDereferenceChecker()).bugs) == 1

    def test_taint_propagates_through_binary_for_cwe(self):
        pdg = prepare_pdg(compile_source("""
        fun f() {
          t = gets();
          u = t * 3 + 1;
          fopen(u);
          return 0;
        }
        """))
        result = InferEngine(pdg).analyze(cwe23_checker())
        assert len(result.bugs) == 1

    def test_sanitizer_respected(self):
        pdg = prepare_pdg(compile_source("""
        fun f() {
          t = gets();
          u = sanitize_path(t);
          fopen(u);
          return 0;
        }
        """))
        result = InferEngine(pdg).analyze(cwe23_checker())
        assert result.bugs == []
