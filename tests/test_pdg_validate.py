"""Tests for the PDG validator, including fuzzing over generated
subjects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import SubjectSpec, generate_subject
from repro.fusion import prepare_pdg
from repro.lang import compile_source
from repro.pdg import build_pdg
from repro.pdg.graph import DataEdge, EdgeKind
from repro.pdg.validate import validate_pdg

FIGURE1 = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
"""


class TestValidPdgs:
    def test_figure1_validates(self):
        report = validate_pdg(build_pdg(compile_source(FIGURE1)))
        assert report.ok, report.errors

    def test_recursive_program_after_unrolling(self):
        pdg = prepare_pdg(compile_source("""
        fun f(n) {
          if (n < 1) { return 0; }
          m = f(n - 1);
          return m + 1;
        }
        fun main(k) { r = f(k); return r; }
        """))
        assert validate_pdg(pdg).ok

    def test_raise_if_invalid_noop_when_ok(self):
        report = validate_pdg(build_pdg(compile_source(FIGURE1)))
        report.raise_if_invalid()  # must not raise

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_generated_subjects_validate(self, seed):
        spec = SubjectSpec("v", seed=seed, num_functions=12, layers=3,
                           avg_stmts=7, call_fanout=2, null_bugs=(1, 0, 1),
                           loop_density=0.2)
        subject = generate_subject(spec)
        pdg = prepare_pdg(subject.program)
        report = validate_pdg(pdg)
        assert report.ok, report.errors


class TestBrokenPdgsDetected:
    def test_missing_use_edge(self):
        pdg = build_pdg(compile_source(FIGURE1))
        # Sever z = y's incoming edge.
        z = pdg.def_of("bar", "z")
        pdg._preds[z.index].clear()
        report = validate_pdg(pdg)
        assert not report.ok
        assert any("no data edge" in e for e in report.errors)

    def test_missing_return_edge(self):
        pdg = build_pdg(compile_source(FIGURE1))
        site = next(iter(pdg.callsites.values()))
        pdg._preds[site.call_vertex.index] = [
            e for e in pdg.data_preds(site.call_vertex)
            if e.kind is not EdgeKind.RETURN]
        report = validate_pdg(pdg)
        assert any("missing return edge" in e for e in report.errors)

    def test_cycle_detected(self):
        pdg = build_pdg(compile_source(FIGURE1))
        y = pdg.def_of("bar", "y")
        z = pdg.def_of("bar", "z")
        pdg.add_data_edge(DataEdge(z, y, EdgeKind.LOCAL))
        report = validate_pdg(pdg)
        assert any("cycle" in e for e in report.errors)

    def test_cross_function_control_parent(self):
        pdg = build_pdg(compile_source(FIGURE1))
        from repro.lang import Branch
        branch = next(v for v in pdg.vertices
                      if isinstance(v.stmt, Branch))
        alien = pdg.def_of("bar", "y")
        pdg.set_control_parent(alien, branch)
        report = validate_pdg(pdg)
        assert any("crosses functions" in e for e in report.errors)

    def test_raise_if_invalid_raises(self):
        pdg = build_pdg(compile_source(FIGURE1))
        z = pdg.def_of("bar", "z")
        pdg._preds[z.index].clear()
        with pytest.raises(ValueError):
            validate_pdg(pdg).raise_if_invalid()
