"""Tests for the S_t transfer-summary table (Algorithm 2's cache).

The key property: summary-based discovery finds exactly the
(source, sink) pairs the path-enumerating sparse collector finds —
differentially fuzzed over generated subjects.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker, cwe23_checker
from repro.fusion import prepare_pdg
from repro.lang import compile_source
from repro.sparse import collect_candidates
from repro.sparse.summaries import TransferSummaryTable, discover_pairs

FIGURE1 = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
"""


def collector_pairs(pdg, checker):
    return {(c.source.index, c.sink.index)
            for c in collect_candidates(pdg, checker)}


class TestSummaryContents:
    def test_passthrough_param_reaches_return(self):
        pdg = prepare_pdg(compile_source("fun id(v) { return v; }"))
        table = TransferSummaryTable(pdg, NullDereferenceChecker())
        assert table.summary("id").param_to_return == {0}

    def test_arithmetic_kills_null_param(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        table = TransferSummaryTable(pdg, NullDereferenceChecker())
        assert table.summary("bar").param_to_return == set()

    def test_taint_param_survives_arithmetic(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        table = TransferSummaryTable(pdg, cwe23_checker())
        assert 0 in table.summary("bar").param_to_return

    def test_param_to_sink_through_callee(self):
        pdg = prepare_pdg(compile_source("""
        fun consume(p) {
          deref(p);
          return 0;
        }
        fun wrap(q) {
          r = consume(q);
          return r;
        }
        """))
        table = TransferSummaryTable(pdg, NullDereferenceChecker())
        # wrap's parameter reaches the deref inside consume.
        assert any(p == 0 for p, _ in table.summary("wrap").param_to_sink)

    def test_source_inside_function_recorded(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        table = TransferSummaryTable(pdg, NullDereferenceChecker())
        summary = table.summary("foo")
        assert len(summary.source_to_sink) == 1

    def test_entries_counted(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        table = TransferSummaryTable(pdg, NullDereferenceChecker())
        assert table.total_entries() >= 1


class TestDiscovery:
    def test_figure1_pair_found(self):
        pdg = prepare_pdg(compile_source(FIGURE1))
        checker = NullDereferenceChecker()
        assert discover_pairs(pdg, checker) == collector_pairs(pdg, checker)

    def test_upward_flow_through_two_levels(self):
        pdg = prepare_pdg(compile_source("""
        fun make() { p = null; return p; }
        fun mid() { q = make(); return q; }
        fun top() { r = mid(); deref(r); return 0; }
        """))
        checker = NullDereferenceChecker()
        pairs = discover_pairs(pdg, checker)
        assert pairs == collector_pairs(pdg, checker)
        assert len(pairs) == 1

    def test_no_sources_no_pairs(self):
        pdg = prepare_pdg(compile_source("fun f(a) { return a + 1; }"))
        assert discover_pairs(pdg, NullDereferenceChecker()) == set()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_agrees_with_path_collector_on_random_subjects(self, seed):
        spec = SubjectSpec("st", seed=seed, num_functions=12, layers=3,
                           avg_stmts=7, call_fanout=2, null_bugs=(2, 1, 1),
                           taint23_bugs=(1, 0, 1))
        subject = generate_subject(spec)
        pdg = prepare_pdg(subject.program)
        for checker in (NullDereferenceChecker(), cwe23_checker()):
            assert discover_pairs(pdg, checker) == \
                collector_pairs(pdg, checker), (seed, checker.name)
