"""Hypothesis differential: abstract triage facts vs concrete execution.

Two properties ground the absint pass in `lang.interp`'s semantics:

* **Forward soundness** — on fuzzed extern-free functions, the concrete
  return value (and its taint/null provenance) always lies inside the
  fixpoint's abstract value for the returned definition, whatever the
  arguments.
* **No wrong PROVEN_* verdicts** — on generated benchmark subjects,
  every ``PROVEN_FEASIBLE`` candidate's abstract witness replays
  concretely into a null reaching the sink, and no candidate that the
  generator labels path-infeasible is ever proven feasible.
  ``NEEDS_SMT`` is always allowed.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.absint import CandidateTriage, TriageVerdict, analyze_pdg
from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.fusion import prepare_pdg
from repro.lang import Interpreter, Return, compile_source
from repro.smt import to_signed
from repro.sparse import collect_candidates


class ExprFuzzer:
    """Random extern-free function texts from a seeded RNG."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.counter = 0

    def expr(self, vars_, depth=0) -> str:
        rng = self.rng
        if depth > 2 or rng.random() < 0.35:
            if rng.random() < 0.5 and vars_:
                return rng.choice(vars_)
            return str(rng.randint(0, 40))
        op = rng.choice(["+", "-", "*", "/", "%", "&", "|", "^",
                         "<<", ">>"])
        left = self.expr(vars_, depth + 1)
        right = self.expr(vars_, depth + 1)
        if op in ("<<", ">>"):
            right = str(rng.randint(0, 3))
        return f"({left} {op} {right})"

    def cond(self, vars_) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"{self.expr(vars_, 2)} {op} {self.expr(vars_, 2)}"

    def function(self) -> str:
        rng = self.rng
        vars_ = ["a", "b"]
        lines = []
        for _ in range(rng.randint(2, 6)):
            name = f"v{self.counter}"
            self.counter += 1
            if rng.random() < 0.25:
                lines.append(f"  if ({self.cond(vars_)}) {{")
                lines.append(f"    {name} = {self.expr(vars_)};")
                lines.append("  } else {")
                lines.append(f"    {name} = {self.expr(vars_)};")
                lines.append("  }")
            else:
                lines.append(f"  {name} = {self.expr(vars_)};")
            vars_.append(name)
        ret = rng.choice(vars_)
        return "fun f(a, b) {\n" + "\n".join(lines) + \
            f"\n  return {ret};\n}}"


def return_vertices(pdg, function):
    return [v for v in pdg.vertices
            if v.function == function and isinstance(v.stmt, Return)]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**9), a=st.integers(0, 255),
       b=st.integers(0, 255))
def test_concrete_return_value_inside_abstract_interval(seed, a, b):
    src = ExprFuzzer(random.Random(seed)).function()
    program = compile_source(src)
    pdg = prepare_pdg(program)
    state = analyze_pdg(pdg)

    concrete = Interpreter(program).run("f", (a, b)).return_value
    signed = to_signed(concrete.bits, program.width)
    for vertex in return_vertices(pdg, "f"):
        abstract = state.value_of(vertex)
        assert not abstract.is_bottom, src
        assert abstract.interval.contains(signed), \
            (src, a, b, signed, abstract)
        assert concrete.taints <= frozenset(abstract.taints), src
        if not abstract.nullness.may_be_null:
            assert not concrete.is_null, src


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_proven_verdicts_never_contradict_execution(seed):
    spec = SubjectSpec("fuzz-triage-interp", seed=seed, num_functions=6,
                       layers=3, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    subject = generate_subject(spec)
    program = subject.program
    pdg = prepare_pdg(program)
    checker = NullDereferenceChecker()
    triage = CandidateTriage(pdg, checker)

    feasible_sources = {b.source_function
                       for b in subject.truth_for("null-deref")
                       if b.path_feasible}

    for candidate in collect_candidates(pdg, checker):
        decision = triage.decide(candidate)
        if decision.verdict is TriageVerdict.NEEDS_SMT:
            continue  # always allowed
        if decision.verdict is TriageVerdict.PROVEN_FEASIBLE:
            # A proven-feasible bug must be a labelled-feasible one...
            assert candidate.source.function in feasible_sources, \
                (seed, candidate)
            # ...and its abstract witness must replay concretely when
            # the path's enclosing activation runs with the witness
            # arguments (sink-side root: a fact that escapes its birth
            # function via a return edge replays from the caller whose
            # body actually reaches the sink).
            root = candidate.path.root_frame()
            fn = program.functions[root.function]
            args = [decision.witness.get(p.name, 0) for p in fn.params]
            execution = Interpreter(program).run(root.function, args)
            sink_callee = candidate.sink.stmt.callee
            assert any(e.passed_null
                       for e in execution.events_for(sink_callee)), \
                (seed, candidate, decision.witness)


def test_witness_replays_when_source_escapes_via_return():
    """A fact born in a parameter-free callee and escaping through a
    return edge must produce a witness for the *caller* — the function
    whose execution actually reaches the sink — not the birth function
    (whose replay would never call anything).  Found by the fuzz test
    above at seed 382."""
    program = compile_source("""
fun make() {
  p = null;
  return p;
}
fun use(k) {
  p = make();
  c = 1;
  d = 2;
  if (c < d) {
    deref(p);
  }
  return 0;
}
""")
    pdg = prepare_pdg(program)
    checker = NullDereferenceChecker()
    triage = CandidateTriage(pdg, checker)

    candidates = collect_candidates(pdg, checker)
    assert candidates, "the escaped null must reach the deref"
    decisions = [(c, triage.decide(c)) for c in candidates]
    proven = [(c, d) for c, d in decisions
              if d.verdict is TriageVerdict.PROVEN_FEASIBLE]
    assert proven, "constant-true guard must be decided in triage"
    for candidate, decision in proven:
        root = candidate.path.root_frame()
        assert root.function == "use"
        fn = program.functions[root.function]
        args = [decision.witness.get(p.name, 0) for p in fn.params]
        execution = Interpreter(program).run(root.function, args)
        assert any(e.passed_null for e in execution.events_for("deref")), \
            (candidate, decision.witness)
