"""Tests for quick-path summaries (Section 3.2.3)."""

from repro.fusion import QuickPathTable, Shape
from repro.lang import compile_source
from repro.pdg import build_pdg


def table_of(src):
    return QuickPathTable(build_pdg(compile_source(src)))


class TestShapes:
    def test_paper_bar_is_affine(self):
        table = table_of("""
        fun bar(x) {
          y = x * 2;
          z = y;
          return z;
        }
        """)
        summary = table.summary("bar")
        assert summary.shape is Shape.AFFINE
        assert (summary.scale, summary.param_index, summary.offset) \
            == (2, 0, 0)

    def test_constant_return(self):
        table = table_of("fun k() { return 42; }")
        summary = table.summary("k")
        assert summary.shape is Shape.CONST and summary.offset == 42

    def test_identity_passthrough(self):
        table = table_of("fun id(v) { return v; }")
        summary = table.summary("id")
        assert summary.shape is Shape.AFFINE
        assert (summary.scale, summary.param_index, summary.offset) \
            == (1, 0, 0)

    def test_affine_chain_with_offset(self):
        table = table_of("""
        fun f(a) {
          b = a + 3;
          c = b * 5;
          d = c - 1;
          return d;
        }
        """)
        summary = table.summary("f")
        assert summary.shape is Shape.AFFINE
        assert (summary.scale, summary.offset) == (5, 14)

    def test_shift_is_scaling(self):
        table = table_of("fun f(a) { b = a << 3; return b; }")
        summary = table.summary("f")
        assert summary.shape is Shape.AFFINE and summary.scale == 8

    def test_extern_result_is_havoc(self):
        table = table_of("fun f() { t = ext(); return t; }")
        assert table.summary("f").shape is Shape.HAVOC

    def test_havoc_plus_constant_stays_havoc(self):
        table = table_of("fun f() { t = ext(); u = t + 7; return u; }")
        assert table.summary("f").shape is Shape.HAVOC

    def test_same_havoc_twice_is_opaque(self):
        # t + t == 2t only covers even residues: not unconstrained.
        table = table_of("fun f() { t = ext(); u = t + t; return u; }")
        assert table.summary("f").shape is Shape.OPAQUE

    def test_havoc_minus_itself_is_opaque(self):
        table = table_of("""
        fun f() {
          t = ext();
          u = t;
          v = t - u;
          return v;
        }
        """)
        assert table.summary("f").shape is Shape.OPAQUE

    def test_independent_havocs_combine(self):
        table = table_of("""
        fun f() {
          t = ext();
          u = ext();
          v = t + u;
          return v;
        }
        """)
        assert table.summary("f").shape is Shape.HAVOC

    def test_two_params_is_opaque(self):
        table = table_of("fun f(a, b) { c = a + b; return c; }")
        assert table.summary("f").shape is Shape.OPAQUE

    def test_same_param_twice_folds(self):
        table = table_of("fun f(a) { c = a + a; return c; }")
        summary = table.summary("f")
        assert summary.shape is Shape.AFFINE and summary.scale == 2

    def test_nonlinear_is_opaque(self):
        table = table_of("fun f(a) { c = a * a; return c; }")
        assert table.summary("f").shape is Shape.OPAQUE

    def test_branch_dependent_return_is_opaque(self):
        table = table_of("""
        fun f(a) {
          if (a < 5) { return 1; }
          return 2;
        }
        """)
        assert table.summary("f").shape is Shape.OPAQUE


class TestComposition:
    def test_summary_composes_through_calls(self):
        table = table_of("""
        fun double(x) { return x * 2; }
        fun quad(y) {
          a = double(y);
          b = double(a);
          return b;
        }
        """)
        summary = table.summary("quad")
        assert summary.shape is Shape.AFFINE and summary.scale == 4

    def test_const_through_call(self):
        table = table_of("""
        fun k() { return 7; }
        fun f() {
          a = k();
          b = a + 1;
          return b;
        }
        """)
        summary = table.summary("f")
        assert summary.shape is Shape.CONST and summary.offset == 8

    def test_havoc_through_call_fresh_per_site(self):
        table = table_of("""
        fun h() { t = ext(); return t; }
        fun f() {
          a = h();
          b = h();
          c = a - b;
          return c;
        }
        """)
        # Two activations of h are independent havocs: difference covers
        # everything.
        assert table.summary("f").shape is Shape.HAVOC

    def test_caching_counts_hits(self):
        table = table_of("""
        fun g(x) { return x; }
        fun f(a) {
          p = g(a);
          q = g(p);
          return q;
        }
        """)
        table.summary("f")
        hits_before = table.hits
        table.summary("g")
        assert table.hits > hits_before

    def test_modulus_wraps_scale(self):
        # Width is 8 by default: scale 256 == 0 -> constant 0.
        table = table_of("fun f(a) { b = a << 8; return b; }")
        summary = table.summary("f")
        assert summary.shape is Shape.CONST and summary.offset == 0
