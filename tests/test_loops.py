"""Unit tests for solver-driven loop summaries (``repro.loops``).

Covers: the summary/unroll semantic-equivalence contract on hand-written
loops, every fallback-to-unroll rule, observable (division) emission,
the cross-edit summary cache, the loop-lowering telemetry counters, and
the recursion-limit regression of the legacy unroll path (a free-bound
loop at ``--unroll 2000`` used to blow the Python stack).
"""

import json
import sys
import tempfile

import pytest

from repro.checkers import DivByZeroChecker, NullDereferenceChecker
from repro.engine import (AnalysisSession, EngineSettings,
                          findings_payload)
from repro.fusion import prepare_pdg
from repro.lang import LoweringConfig, compile_source
from repro.lang.interp import Interpreter
from repro.lang.ir import Assign, Binary, BinOp, Const
from repro.loops import LOOP_STRATEGIES, SummaryCache


def lower(source: str, strategy: str, depth: int = 2, **kwargs):
    return compile_source(source, LoweringConfig(
        loop_unroll=depth, loop_strategy=strategy, **kwargs))


def execute(program, fn: str, args):
    result = Interpreter(program).run(fn, list(args))
    return (result.return_value,
            [(e.callee, tuple(v.bits for v in e.args))
             for e in result.sink_events])


def assert_equivalent(source: str, fn: str, grid, depth: int = 2):
    """Summaries and unrolling must be observationally equal: same
    return value and same sink-event trace on every input."""
    summarized = lower(source, "summaries", depth)
    unrolled = lower(source, "unroll", depth)
    for args in grid:
        assert execute(summarized, fn, args) == \
            execute(unrolled, fn, args), (args, depth)


GRID = [(0, 0), (1, 3), (2, 7), (5, 2), (60, 9), (100, 1), (255, 255)]


class TestSemanticEquivalence:
    def test_const_trip_accumulation(self):
        src = """
        fun f(k, m) {
          i = 0;
          acc = k;
          while (i < 5) {
            acc = acc + m;
            i = i + 1;
          }
          return acc + i;
        }
        """
        for depth in (1, 2, 4, 8):
            assert_equivalent(src, "f", GRID, depth)

    def test_free_bound_loop(self):
        src = """
        fun f(k, m) {
          i = 0;
          while (i < m) {
            i = i + 2;
          }
          return i;
        }
        """
        for depth in (1, 2, 5):
            assert_equivalent(src, "f", GRID, depth)

    def test_branch_in_body(self):
        src = """
        fun f(k, m) {
          i = 0;
          acc = 0;
          while (i < 4) {
            if (k > 50) {
              acc = acc + m;
            } else {
              acc = acc + 1;
            }
            i = i + 1;
          }
          return acc;
        }
        """
        assert_equivalent(src, "f", GRID)
        assert_equivalent(src, "f", GRID, depth=6)

    def test_sink_after_loop_survives(self):
        src = """
        fun f(k, m) {
          p = null;
          i = 0;
          while (i < 3) {
            i = i + 1;
          }
          if (k > 10) {
            deref(p);
          }
          return i;
        }
        """
        assert_equivalent(src, "f", GRID)
        for strategy in LOOP_STRATEGIES:
            program = lower(src, strategy)
            result = __import__("repro.fusion", fromlist=["FusionEngine"]) \
                .FusionEngine(prepare_pdg(program)) \
                .analyze(NullDereferenceChecker())
            assert sum(1 for r in result.reports if r.feasible) == 1, \
                strategy


class TestFallbackRules:
    def summarize(self, src: str, **kwargs):
        program = lower(src, "summaries", **kwargs)
        return program, program.loop_stats

    def test_call_in_body_falls_back(self):
        src = """
        fun g(a) { return a + 1; }
        fun f(k, m) {
          i = 0;
          while (i < 3) { i = g(i); }
          return i;
        }
        """
        _, stats = self.summarize(src)
        assert stats.fallback_unrolls == 1
        assert stats.loops_summarized == 0
        assert_equivalent(src, "f", GRID)

    def test_null_in_body_falls_back(self):
        src = """
        fun f(k, m) {
          i = 0;
          p = 1;
          while (i < 3) { p = null; i = i + 1; }
          return i;
        }
        """
        _, stats = self.summarize(src)
        assert stats.fallback_unrolls == 1
        assert_equivalent(src, "f", GRID)

    def test_return_in_body_falls_back(self):
        src = """
        fun f(k, m) {
          i = 0;
          while (i < 3) {
            if (k > 9) { return i; }
            i = i + 1;
          }
          return i;
        }
        """
        _, stats = self.summarize(src)
        assert stats.fallback_unrolls == 1
        assert_equivalent(src, "f", GRID)

    def test_nested_loop_falls_back(self):
        src = """
        fun f(k, m) {
          i = 0;
          acc = 0;
          while (i < 3) {
            j = 0;
            while (j < 2) { acc = acc + 1; j = j + 1; }
            i = i + 1;
          }
          return acc;
        }
        """
        _, stats = self.summarize(src)
        # The outer loop is ineligible; the inner loop, revisited inside
        # the unrolled expansion, summarizes on its own.
        assert stats.fallback_unrolls >= 1
        assert_equivalent(src, "f", GRID)

    def test_path_budget_overflow_falls_back(self):
        branches = "\n".join(
            f"            if (k > {10 * n}) {{ acc = acc + {n}; }}"
            for n in range(1, 9))
        src = f"""
        fun f(k, m) {{
          i = 0;
          acc = 0;
          while (i < 2) {{
{branches}
            i = i + 1;
          }}
          return acc;
        }}
        """
        program = compile_source(src, LoweringConfig(
            loop_unroll=2, loop_strategy="summaries", loop_paths=8))
        assert program.loop_stats.fallback_unrolls == 1
        assert program.loop_stats.loops_summarized == 0

    def test_unroll_zero_drops_loops_under_both_strategies(self):
        src = """
        fun f(k, m) {
          i = 0;
          while (i < 3) { i = i + 1; }
          return i;
        }
        """
        for strategy in LOOP_STRATEGIES:
            program = lower(src, strategy, depth=0)
            assert execute(program, "f", (1, 2))[0].bits == 0


class TestObservables:
    def test_division_in_loop_keeps_div_zero_verdict(self):
        src = """
        fun f(k, m) {
          i = 0;
          acc = 0;
          while (i < 2) {
            acc = acc + k / 0;
            i = i + 1;
          }
          return acc;
        }
        """
        from repro.fusion import FusionEngine

        feasible = {}
        for strategy in LOOP_STRATEGIES:
            program = lower(src, strategy)
            result = FusionEngine(prepare_pdg(program)) \
                .analyze(DivByZeroChecker())
            feasible[strategy] = sum(
                1 for r in result.reports if r.feasible)
        # Equal-or-better: the summary path materializes the constant
        # divisor into a def (`%lsd = 0`), which gives the checker a
        # source vertex the literal operand of the unrolled lowering
        # never had.  Summaries may therefore report strictly more true
        # positives here, never fewer.
        assert feasible["summaries"] >= 1
        assert feasible["summaries"] >= feasible["unroll"]

    def test_const_divisor_is_materialized(self):
        src = """
        fun f(k, m) {
          i = 0;
          acc = k;
          while (i < 2) {
            acc = acc / 3;
            i = i + 1;
          }
          return acc;
        }
        """
        program = lower(src, "summaries")
        assert program.loop_stats.loops_summarized == 1
        stmts = list(program.functions["f"].statements())
        divs = [s for s in stmts
                if isinstance(s, Binary) and s.op is BinOp.DIV]
        assert divs, "division observable was folded away"
        const_feeds = {s.result.name: s.source for s in stmts
                       if isinstance(s, Assign)
                       and isinstance(s.source, Const)}
        assert any(const_feeds.get(getattr(d.rhs, "name", None))
                   == Const(3) for d in divs), \
            "constant divisor must flow through a materialized def"
        assert_equivalent(src, "f", GRID)


class TestSummaryCache:
    SRC = """
    fun f(k, m) {
      i = 0;
      acc = k;
      while (i < 4) {
        acc = acc + m;
        i = i + 1;
      }
      return acc;
    }

    fun other(a) {
      return a + 1;
    }
    """

    def test_cache_hits_across_unrelated_edit(self):
        session = AnalysisSession(self.SRC)
        first = session.pdg.program.loop_stats
        assert first.loops_summarized == 1
        assert first.summary_cache_hits == 0
        session.update_source(self.SRC.replace("a + 1", "a + 2"))
        second = session.pdg.program.loop_stats
        assert second.loops_summarized == 1
        assert second.summary_cache_hits == 1

    def test_loop_body_edit_misses(self):
        session = AnalysisSession(self.SRC)
        session.update_source(self.SRC.replace("acc + m", "acc + m + 1"))
        assert session.pdg.program.loop_stats.summary_cache_hits == 0

    def test_negative_results_are_cached(self):
        # A loop with a call is rejected before the cache is consulted;
        # a *budget overflow* is discovered inside summarization, so its
        # None result is worth remembering across compiles.
        cache = SummaryCache()
        branches = "\n".join(
            f"    if (k > {10 * n}) {{ acc = acc + {n}; }}"
            for n in range(1, 9))
        src = f"""
        fun f(k) {{
          i = 0;
          acc = 0;
          while (i < 2) {{
{branches}
            i = i + 1;
          }}
          return acc;
        }}
        """
        config = LoweringConfig(loop_paths=8, summary_cache=cache)
        first = compile_source(src, config)
        assert first.loop_stats.fallback_unrolls == 1
        assert cache.misses == 1
        second = compile_source(src, config)
        assert second.loop_stats.fallback_unrolls == 1
        assert second.loop_stats.summary_cache_hits == 1
        assert cache.hits == 1 and cache.misses == 1


class TestUnrollRecursionRegression:
    """``--unroll 2000`` under the unroll strategy used to crash with
    RecursionError (recursive AST expansion, recursive statement
    walker).  Both paths are iterative now."""

    SRC = """
    fun f(k, m) {
      i = 0;
      while (i < m) { i = i + 1; }
      return i;
    }
    """

    def test_deep_unroll_compiles(self):
        limit = sys.getrecursionlimit()
        assert limit <= 10_000, "test assumes a default-ish stack limit"
        program = lower(self.SRC, "unroll", depth=2000)
        assert program.size() > 2000

    def test_deep_bound_under_summaries_compiles(self):
        # The free-bound loop overflows the path budget at this depth
        # and falls back to (now iterative) unrolling — no crash.
        program = lower(self.SRC, "summaries", depth=2000)
        assert program.size() > 2000


class TestConfigurationSurface:
    def test_unknown_strategy_rejected_by_lowering(self):
        with pytest.raises(ValueError):
            compile_source("fun f(a) { return a; }",
                           LoweringConfig(loop_strategy="bogus"))

    def test_unknown_strategy_rejected_by_settings_payload(self):
        payload = EngineSettings().to_payload()
        payload["loop_strategy"] = "bogus"
        with pytest.raises(ValueError):
            EngineSettings.from_payload(payload)

    def test_settings_payload_round_trips_loop_fields(self):
        settings = EngineSettings(loop_strategy="unroll", loop_paths=16)
        restored = EngineSettings.from_payload(settings.to_payload())
        assert restored == settings

    def test_telemetry_carries_loop_counters(self):
        from repro.exec import Telemetry

        telemetry = Telemetry()
        telemetry.record_loops(loops_summarized=3, paths_enumerated=7,
                               fallback_unrolls=1, summary_cache_hits=2,
                               sat_checks=5)
        other = Telemetry()
        other.record_loops(loops_summarized=1)
        telemetry.merge(other)
        document = telemetry.as_dict()
        assert document["schema"].endswith("/10")
        assert document["loops"]["loops_summarized"] == 4
        assert document["loops"]["paths_enumerated"] == 7

    def test_cli_exposes_loop_flags_uniformly(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("scan", "query", "analyze", "bench", "serve",
                        "pdg"):
            args = parser.parse_args(
                [command] + (["--subject", "mcf"]
                             if command in ("analyze", "pdg") else
                             ["x.fl"] if command in ("scan",) else
                             ["x.fl", "--checker", "null-deref",
                              "--sink", "1"] if command == "query"
                             else []))
            assert args.loop_strategy == "summaries", command
            assert args.loop_paths == 64, command
            assert args.unroll == 2, command
            assert args.width == 8, command

    def test_scan_loop_strategy_flag(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "prog.fl"
        src.write_text("""
        fun f(k) {
          p = null;
          i = 0;
          while (i < 3) { i = i + 1; }
          if (k > 5) { deref(p); }
          return i;
        }
        """)
        codes = {}
        for strategy in LOOP_STRATEGIES:
            codes[strategy] = main(["scan", str(src), "--checker",
                                    "null-deref", "--loop-strategy",
                                    strategy, "--json"])
            payload = json.loads(capsys.readouterr().out)
            assert any(f["feasible"] for f in payload["findings"]), \
                strategy
        assert codes == {"summaries": 1, "unroll": 1}


class TestStoreFingerprintInteraction:
    SRC = """
    fun f(k, m) {
      p = null;
      i = 0;
      acc = k;
      while (i < 4) {
        acc = acc + m;
        i = i + 1;
      }
      if (acc > 3) { deref(p); }
      return acc;
    }
    """

    @pytest.mark.parametrize("strategy", LOOP_STRATEGIES)
    def test_warm_replay_is_byte_identical_across_loop_edit(
            self, strategy):
        from repro.exec import ArtifactStore

        edited = self.SRC.replace("acc + m", "acc + m + 1")
        settings = EngineSettings(loop_strategy=strategy)
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root, label="loops")
            session = AnalysisSession(self.SRC, settings=settings,
                                      store=store)
            session.analyze("null-deref")
            session.update_source(edited)
            warm = session.analyze("null-deref")
        cold = AnalysisSession(edited, settings=settings) \
            .analyze("null-deref")
        assert json.dumps(findings_payload(warm)) == \
            json.dumps(findings_payload(cold))
