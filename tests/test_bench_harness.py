"""Tests for the subject registry, metrics, runner, and reporting."""

import pytest

from repro.bench import (SUBJECTS, PrecisionRecall, evaluate_reports,
                         industrial_subjects, materialize, render_table,
                         run_engine, speedup, subject_by_name)
from repro.bench.reporting import (fmt_failure, render_memory_breakdown,
                                   render_scatter_summary)
from repro.checkers.base import AnalysisResult, BugCandidate, BugReport


class TestRegistry:
    def test_sixteen_subjects(self):
        assert len(SUBJECTS) == 16
        assert [s.id for s in SUBJECTS] == list(range(1, 17))

    def test_names_match_paper(self):
        names = [s.name for s in SUBJECTS]
        assert names[0] == "mcf" and names[15] == "wine"
        assert "ffmpeg" in names and "v8" in names

    def test_industrial_are_last_four(self):
        assert [s.name for s in industrial_subjects()] == \
            ["ffmpeg", "v8", "mysql", "wine"]

    def test_industrial_subjects_carry_taint_bugs(self):
        for subject in industrial_subjects():
            assert sum(subject.spec.taint23_bugs) > 0
            assert sum(subject.spec.taint402_bugs) > 0

    def test_spec_subjects_do_not(self):
        assert sum(subject_by_name("mcf").spec.taint23_bugs) == 0

    def test_unknown_subject_raises(self):
        with pytest.raises(KeyError):
            subject_by_name("doom")

    def test_materialize_cached(self):
        assert materialize("mcf") is materialize("mcf")

    def test_sizes_grow_with_id(self):
        locs = [materialize(s.name).loc for s in SUBJECTS]
        assert locs[0] < locs[7] < locs[15]


class TestMetrics:
    @staticmethod
    def fake_result(bug_functions):
        from repro.bench import pdg_for
        pdg = pdg_for("mcf")
        result = AnalysisResult("x", "null-deref")
        for fn in bug_functions:
            vertex = next(v for v in pdg.vertices if v.function == fn)
            path = __import__("repro.baselines.infer",
                              fromlist=["_stub_path"])._stub_path(
                vertex, vertex)
            result.reports.append(
                BugReport(BugCandidate("null-deref", path), feasible=True))
        return result

    def test_tp_fp_classification(self):
        subject = materialize("mcf")
        truth = subject.truth_for("null-deref")
        real = [b for b in truth if b.real]
        fake = [b for b in truth if not b.real]
        assert real and fake  # mcf injects (1, 0, 1)

        result = self.fake_result([real[0].source_function,
                                   fake[0].source_function])
        metrics = evaluate_reports(subject, result)
        assert metrics.true_positives == 1
        assert metrics.false_positives == 1
        assert metrics.missed_real == 0

    def test_unmatched_report_is_fp(self):
        subject = materialize("mcf")
        result = self.fake_result(["fn_l0_0"])
        metrics = evaluate_reports(subject, result)
        assert metrics.false_positives == 1

    def test_missed_real_counted(self):
        subject = materialize("mcf")
        result = AnalysisResult("x", "null-deref")
        metrics = evaluate_reports(subject, result)
        assert metrics.missed_real == \
            sum(1 for b in subject.truth_for("null-deref") if b.real)

    def test_fp_rate(self):
        pr = PrecisionRecall(reports=4, true_positives=1, false_positives=3)
        assert pr.fp_rate == 0.75
        assert PrecisionRecall().fp_rate == 0.0


class TestRunner:
    def test_run_engine_end_to_end(self):
        outcome = run_engine("mcf", "fusion", "null-deref")
        assert outcome.failed is None
        row = outcome.row()
        assert row["subject"] == "mcf" and row["engine"] == "fusion"
        assert row["tp"] >= 1

    def test_engines_share_the_pdg(self):
        from repro.bench import pdg_for
        assert pdg_for("mcf") is pdg_for("mcf")

    def test_unknown_engine_rejected(self):
        from repro.bench import make_engine, pdg_for
        with pytest.raises(ValueError):
            make_engine("nonsense", pdg_for("mcf"), None)

    def test_variant_engine_construction(self):
        from repro.bench import make_engine, pdg_for
        engine = make_engine("pinpoint+lfs", pdg_for("mcf"), None)
        assert engine.name == "pinpoint+LFS"

    def test_query_records_captured(self):
        outcome = run_engine("mcf", "fusion", "null-deref")
        assert len(outcome.query_records) == outcome.result.smt_queries


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines
                    if "|" in line}) == 1

    def test_speedup_formatting(self):
        assert speedup(10, 1) == "10x"
        assert speedup(3, 2) == "1.5x"
        assert speedup(5, 0) == "-"

    def test_fmt_failure(self):
        assert fmt_failure("memory") == "Memory Out"
        assert fmt_failure("time") == "Timeout"
        assert fmt_failure(None) == ""

    def test_memory_breakdown_shares(self):
        text = render_memory_breakdown([("x", 75, 100), ("y", 10, 100)])
        assert "75%" in text and "10%" in text

    def test_scatter_summary(self):
        pairs = [(0.1, 0.3, "sat"), (0.2, 0.2, "sat"), (0.5, 0.6, "unsat")]
        text = render_scatter_summary(pairs)
        assert "sat: 2 instances" in text
        assert "unsat: 1 instances" in text
        assert "overall" in text
