"""Regression tests: ``splice_function`` vs line comments.

The lexer accepts ``#`` and ``//`` line comments, so held source can
legally carry braces — or whole ``fun`` headers — inside comments.  The
splicer must skip comment spans during both the header search and the
brace scan; these cases corrupted the held source before the fix.
"""

import pytest

from repro.lang import compile_source
from repro.serve.protocol import ServeError
from repro.serve.tenancy import splice_function


def test_close_brace_in_hash_comment_does_not_truncate_body():
    source = (
        "fun foo(x) {\n"
        "  # weird } brace in a comment\n"
        "  y = x + 1;\n"
        "  return y;\n"
        "}\n"
        "fun main(a) {\n"
        "  b = foo(a);\n"
        "  return b;\n"
        "}\n"
    )
    edit = "fun foo(x) {\n  y = x + 2;\n  return y;\n}"
    spliced = splice_function(source, "foo", edit)
    # The old body must be fully replaced — a desynchronized brace scan
    # leaves a dangling fragment of it behind.
    assert "x + 1" not in spliced
    assert "x + 2" in spliced
    assert spliced.count("fun foo") == 1
    compile_source(spliced)


def test_open_brace_in_slash_comment_does_not_swallow_next_function():
    source = (
        "fun foo(x) {\n"
        "  // opens { but only in prose\n"
        "  return x;\n"
        "}\n"
        "fun bar(a) {\n"
        "  return a;\n"
        "}\n"
    )
    edit = "fun foo(x) {\n  return x;\n}"
    spliced = splice_function(source, "foo", edit)
    # An over-counted depth makes the scan run on into ``bar`` and
    # splice it away together with ``foo``.
    assert "fun bar(a)" in spliced
    compile_source(spliced)


def test_commented_out_header_does_not_shadow_real_definition():
    source = (
        "# fun main(a) { old draft }\n"
        "fun main(a) {\n"
        "  return a;\n"
        "}\n"
    )
    edit = "fun main(a) {\n  b = a + 1;\n  return b;\n}"
    spliced = splice_function(source, "main", edit)
    # Matching the commented-out header replaces the comment instead of
    # the definition, leaving a duplicate ``fun main`` (a compile
    # error).  The comment is prose and must survive untouched.
    assert "old draft" in spliced
    assert "a + 1" in spliced
    assert "return a;" not in spliced
    compile_source(spliced)


def test_commented_out_header_in_edit_text_is_ignored():
    source = "fun main(a) {\n  return a;\n}\n"
    edit = (
        "// fun other(x) { }\n"
        "fun main(a) {\n"
        "  return a;\n"
        "}"
    )
    spliced = splice_function(source, "main", edit)
    assert spliced.count("fun main") == 1
    compile_source(spliced)


def test_name_mismatch_still_rejected():
    source = "fun main(a) {\n  return a;\n}\n"
    with pytest.raises(ServeError):
        splice_function(source, "main", "fun other(x) {\n  return x;\n}")
