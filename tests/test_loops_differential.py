"""Differential suite: loop summaries vs unrolling vs the interpreter.

The loop-summary contract (docs/loops.md) is relational, not byte-level:
SSA spelling differs between the two lowerings, but on the 25-seed
loop-heavy corpus the ``summaries`` strategy must

* decide every (source function, sink function) pair exactly as the
  ``unroll`` strategy decides it at the same depth bound — shallow
  (the default 2) and deep (8);
* never report a bug the concrete interpreter refutes when its witness
  is replayed;
* agree for both path-sensitive engines (Fusion and the Pinpoint
  baseline), under pooled execution (thread and process backends), and
  across a cold-then-warm artifact store, including a loop-body edit in
  between (warm replay stays byte-identical to a cold run under either
  strategy).
"""

import json
import tempfile

import pytest

from repro.baselines import PinpointConfig, PinpointEngine
from repro.bench.generator import loop_heavy_source
from repro.checkers import DivByZeroChecker, NullDereferenceChecker
from repro.engine import (AnalysisSession, EngineSettings,
                          findings_payload)
from repro.exec import ArtifactStore, ExecConfig
from repro.fusion import (FusionConfig, FusionEngine, GraphSolverConfig,
                          prepare_pdg)
from repro.lang import LoweringConfig, compile_source
from repro.lang.interp import Interpreter

FUZZ_SEEDS = list(range(25))

#: Seeds for the slower passes (process pool, Pinpoint, store), same
#: convention as the other differential suites.
SMALL_SEEDS = [0, 7, 17, 23]

CHECKERS = {"null-deref": NullDereferenceChecker,
            "div-zero": DivByZeroChecker}

GRID = [(0, 0), (1, 3), (7, 2), (60, 9), (100, 1), (200, 4)]


def corpus_source(seed: int) -> str:
    return loop_heavy_source(9000 + seed, functions=3)


def lower(source: str, strategy: str, depth: int = 2):
    return compile_source(source, LoweringConfig(
        loop_unroll=depth, loop_strategy=strategy))


def fusion(pdg) -> FusionEngine:
    return FusionEngine(pdg, FusionConfig(
        solver=GraphSolverConfig(want_model=True)))


def verdicts(result):
    """Strategy-independent verdict identity: which (source function,
    sink function) pairs are feasible.  Sorted so report order and SSA
    spelling are both free."""
    return sorted((r.feasible, r.source.function, r.sink.function)
                  for r in result.reports)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_summaries_decide_every_pair_unroll_decides(seed):
    source = corpus_source(seed)
    for depth in (2, 8):
        summarized = prepare_pdg(lower(source, "summaries", depth))
        unrolled = prepare_pdg(lower(source, "unroll", depth))
        for name, factory in CHECKERS.items():
            summary_result = fusion(summarized).analyze(factory())
            unroll_result = fusion(unrolled).analyze(factory())
            assert summary_result.candidates > 0, \
                "corpus generated no candidates"
            assert verdicts(summary_result) == verdicts(unroll_result), \
                (name, depth)
            # No new UNKNOWNs: every pair unroll decides, summaries
            # decides.
            assert summary_result.unknown_queries == \
                unroll_result.unknown_queries, (name, depth)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_interpreter_parity_across_strategies(seed):
    source = corpus_source(seed)
    for depth in (2, 8):
        summarized = lower(source, "summaries", depth)
        unrolled = lower(source, "unroll", depth)
        for fn in sorted(summarized.functions):
            params = summarized.functions[fn].params
            for args in GRID:
                inputs = list(args)[:len(params)]
                inputs += [0] * (len(params) - len(inputs))
                left = Interpreter(summarized).run(fn, inputs)
                right = Interpreter(unrolled).run(fn, inputs)
                assert left.return_value == right.return_value, \
                    (fn, args, depth)
                assert left.sink_events == right.sink_events, \
                    (fn, args, depth)


@pytest.mark.parametrize("seed", SMALL_SEEDS)
def test_summarized_witnesses_survive_replay(seed):
    """No interpreter-refuted reports: every feasible null-deref under
    summaries carries a witness whose replay drives null into the
    sink."""
    source = corpus_source(seed)
    program = lower(source, "summaries")
    result = fusion(prepare_pdg(program)).analyze(
        NullDereferenceChecker())
    replayed = 0
    for report in result.reports:
        if not report.feasible:
            continue
        assert report.witness, "feasible report without a witness"
        entry = report.sink.function
        fn = program.functions[entry]
        args = [report.witness.get(f"{entry}::{p.name}#f0", 0)
                for p in fn.params]
        execution = Interpreter(program).run(entry, args)
        assert any(e.passed_null for e in execution.events_for("deref")), \
            (entry, args)
        replayed += 1
    assert replayed > 0, "corpus seed produced no feasible null bug"


@pytest.mark.parametrize("seed", SMALL_SEEDS)
def test_pinpoint_baseline_agrees(seed):
    source = corpus_source(seed)
    for name, factory in CHECKERS.items():
        results = {}
        for strategy in ("summaries", "unroll"):
            pdg = prepare_pdg(lower(source, strategy))
            results[strategy] = PinpointEngine(
                pdg, PinpointConfig()).analyze(factory())
        assert verdicts(results["summaries"]) == \
            verdicts(results["unroll"]), name


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_pooled_execution_matches_sequential(backend):
    source = corpus_source(0)
    pdg = prepare_pdg(lower(source, "summaries"))
    checker = NullDereferenceChecker
    sequential = fusion(pdg).analyze(checker())
    pooled = fusion(pdg).analyze(
        checker(), exec_config=ExecConfig(jobs=2, backend=backend))
    assert json.dumps(findings_payload(pooled)) == \
        json.dumps(findings_payload(sequential))


@pytest.mark.parametrize("seed", SMALL_SEEDS)
@pytest.mark.parametrize("strategy", ["summaries", "unroll"])
def test_store_cold_warm_and_loop_edit(seed, strategy):
    """Cold run, warm no-op replay, then a loop-body edit: the warm
    session's findings stay byte-identical to a cold session on the
    same source under the same strategy."""
    import re

    source = corpus_source(seed)
    # Bump the first loop counter's increment: every loop body has one.
    edited = re.sub(r"(\n    i\d+ = i\d+ \+ )\d;", r"\g<1>3;", source,
                    count=1)
    assert edited != source
    settings = EngineSettings(loop_strategy=strategy)
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root, label="loops-diff")
        session = AnalysisSession(source, settings=settings, store=store)
        cold = session.analyze("null-deref")
        warm = session.analyze("null-deref")
        assert json.dumps(findings_payload(warm)) == \
            json.dumps(findings_payload(cold))
        assert warm.replayed_verdicts == warm.candidates
        session.update_source(edited)
        after_edit = session.analyze("null-deref")
    cold_edited = AnalysisSession(edited, settings=settings) \
        .analyze("null-deref")
    assert json.dumps(findings_payload(after_edit)) == \
        json.dumps(findings_payload(cold_edited))
