"""Differential suite: demand queries == full ``analyze`` verdicts.

For a 25-seed corpus of generated programs, the demand API must be
*invisible* as a decision vehicle:

* for every sink line of a program, a cold ``session.query`` returns
  findings byte-identical to the corresponding subset of a full
  ``analyze``'s findings payload — same reports, same order, same
  witnesses, same key order (``json.dumps`` equality) — on both the
  fusion and pinpoint engines;
* the pair region the query walks is a subset of the sink's backward
  slice (the region-subset guarantee of docs/queries.md), computed
  here by an independent brute-force slicer;
* with a shared artifact store, a query after a full analysis replays
  every verdict without a single solve and still returns identical
  bytes;
* full analyses executed on the parallel thread/process backends agree
  with the (sequential) demand verdicts byte-for-byte.
"""

import json

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.engine import AnalysisSession, EngineSettings, findings_payload
from repro.exec import ArtifactStore, ExecConfig
from repro.query import resolve_def_sites, resolve_sink_sites

SEEDS = list(range(25))
ENGINES = ("fusion", "pinpoint")
CHECKER = "null-deref"


def fuzz_source(seed: int) -> str:
    spec = SubjectSpec("query-diff", seed=seed, num_functions=5,
                       layers=2, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 1, 1))
    return generate_subject(spec).source


def sink_lines(session, source):
    """(line, resolved sink vertices) for every line carrying a sink."""
    checker = NullDereferenceChecker()
    out = []
    for line in range(1, source.count("\n") + 2):
        sinks = resolve_sink_sites(session.pdg, source, checker, line)
        if sinks:
            out.append((line, sinks))
    return out


def backward_slice(pdg, sink_indices):
    """Independent reference slicer: everything backward-reachable from
    the sinks over data edges and control parents, closed over the
    parameters of every touched function."""
    seen = set(sink_indices)
    frontier = list(sink_indices)

    def expand():
        while frontier:
            vertex = pdg.vertices[frontier.pop()]
            for edge in pdg.data_preds(vertex):
                if edge.src.index not in seen:
                    seen.add(edge.src.index)
                    frontier.append(edge.src.index)
            parent = pdg.control_parent(vertex)
            if parent is not None and parent.index not in seen:
                seen.add(parent.index)
                frontier.append(parent.index)

    expand()
    changed = True
    while changed:
        changed = False
        for function in {pdg.vertices[index].function for index in seen}:
            for param in pdg.param_vertices(function):
                if param.index not in seen:
                    seen.add(param.index)
                    frontier.append(param.index)
                    changed = True
        expand()
    return seen


def assert_queries_match_full(source, full, query_session):
    """Every sink line's query verdict == the full run's subset, and
    its region is inside the independent backward slice."""
    full_findings = findings_payload(full)
    lines = sink_lines(query_session, source)
    assert lines, "fuzz subject lost its sinks"
    for line, sinks in lines:
        sink_set = {vertex.index for vertex in sinks}
        expected = [finding for finding, report
                    in zip(full_findings, full.reports)
                    if report.sink.index in sink_set]
        verdict = query_session.query(CHECKER, sink=(line, None))
        assert json.dumps(verdict.findings) == json.dumps(expected), \
            f"line {line}: demand verdict drifted from the full run"
        reference = backward_slice(query_session.pdg, sink_set)
        assert set(verdict.region_indices) <= reference, \
            f"line {line}: region escaped the sink's backward slice"
        assert verdict.feasible == any(f["feasible"] for f in expected)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_cold_query_matches_full_analyze(seed, engine):
    source = fuzz_source(seed)
    settings = EngineSettings(engine=engine)
    full_session = AnalysisSession(source, settings=settings)
    full = full_session.analyze(CHECKER)
    query_session = AnalysisSession(source, settings=settings)
    assert_queries_match_full(source, full, query_session)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS[:10])
def test_warm_store_query_replays_without_solving(seed, engine,
                                                  tmp_path):
    source = fuzz_source(seed)
    settings = EngineSettings(engine=engine)
    store = ArtifactStore(str(tmp_path / "store"))
    warm = AnalysisSession(source, settings=settings, store=store)
    full = warm.analyze(CHECKER)
    full_findings = findings_payload(full)

    query_session = AnalysisSession(source, settings=settings,
                                    store=store)
    for line, sinks in sink_lines(query_session, source):
        sink_set = {vertex.index for vertex in sinks}
        expected = [finding for finding, report
                    in zip(full_findings, full.reports)
                    if report.sink.index in sink_set]
        verdict = query_session.query(CHECKER, sink=(line, None))
        assert json.dumps(verdict.findings) == json.dumps(expected)
        assert verdict.replayed_verdicts == verdict.candidates
        assert verdict.smt_queries == 0


@pytest.mark.parametrize("backend", ("thread", "process"))
@pytest.mark.parametrize("seed", SEEDS[:5])
def test_query_matches_parallel_backends(seed, backend):
    source = fuzz_source(seed)
    settings = EngineSettings(engine="fusion")
    full_session = AnalysisSession(source, settings=settings)
    full = full_session.analyze(
        CHECKER, exec_config=ExecConfig(jobs=2, backend=backend))
    query_session = AnalysisSession(source, settings=settings)
    assert_queries_match_full(source, full, query_session)


@pytest.mark.parametrize("engine", ENGINES)
def test_triage_session_query_matches_full(engine):
    source = fuzz_source(3)
    settings = EngineSettings(engine=engine, triage=True)
    full_session = AnalysisSession(source, settings=settings)
    full = full_session.analyze(CHECKER)
    query_session = AnalysisSession(source, settings=settings)
    assert_queries_match_full(source, full, query_session)


def test_def_restriction_narrows_to_the_pair():
    """A def-line restriction keeps exactly the full-run findings whose
    source was born on that line."""
    source = fuzz_source(0)
    settings = EngineSettings(engine="fusion")
    full_session = AnalysisSession(source, settings=settings)
    full = full_session.analyze(CHECKER)
    full_findings = findings_payload(full)
    query_session = AnalysisSession(source, settings=settings)
    feasible = [report for report in full.reports if report.feasible]
    assert feasible, "fuzz subject lost its planted bug"

    null_lines = [number for number, text
                  in enumerate(source.splitlines(), 1)
                  if "null" in text]
    lines = sink_lines(query_session, source)
    narrowed = 0
    for def_line in null_lines:
        for line, sinks in lines:
            sink_set = {vertex.index for vertex in sinks}
            try:
                verdict = query_session.query(CHECKER, sink=(line, None),
                                              def_line=def_line)
            except ValueError:
                continue  # no checker source on that line
            defs = {vertex.index for vertex in resolve_def_sites(
                query_session.pdg, source, NullDereferenceChecker(),
                def_line)}
            expected = [finding for finding, report
                        in zip(full_findings, full.reports)
                        if report.sink.index in sink_set
                        and report.source.index in defs]
            assert json.dumps(verdict.findings) == json.dumps(expected)
            narrowed += 1
    assert narrowed > 0
