"""Tests for DIMACS and SMT-LIB interchange."""

import pytest

from repro.smt import SatStatus, TermManager
from repro.smt.dimacs import (DimacsError, formula_to_dimacs, parse_dimacs,
                              solve_dimacs, write_dimacs)
from repro.smt.smtlib import (model_to_smtlib, smtlib_symbol,
                              term_to_smtlib, to_smtlib_script)


@pytest.fixture
def mgr():
    return TermManager()


class TestDimacsParsing:
    def test_round_trip(self):
        clauses = [[1, -2], [2, 3], [-1, -3]]
        text = write_dimacs(3, clauses)
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3 and parsed == clauses

    def test_comments_and_blank_lines_skipped(self):
        text = "c a comment\n\np cnf 2 1\nc mid\n1 -2 0\n"
        assert parse_dimacs(text) == (2, [[1, -2]])

    def test_clause_spanning_lines(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        assert parse_dimacs(text)[1] == [[1, 2, 3]]

    def test_missing_problem_line(self):
        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0\n")

    def test_literal_out_of_range(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n5 0\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 5\n1 0\n")

    def test_solve_dimacs_sat(self):
        result = solve_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")
        assert result.status is SatStatus.SAT
        assert result.model[2] is True

    def test_solve_dimacs_unsat(self):
        result = solve_dimacs("p cnf 1 2\n1 0\n-1 0\n")
        assert result.status is SatStatus.UNSAT

    def test_formula_export_is_parseable(self, mgr):
        x = mgr.bv_var("x", 4)
        constraint = mgr.eq(mgr.bvadd(x, x), mgr.bv_const(6, 4))
        text = formula_to_dimacs([constraint])
        num_vars, clauses = parse_dimacs(text)
        assert num_vars >= 4 and clauses
        # The exported CNF is satisfiable (x = 3 works).
        assert solve_dimacs(text).status is SatStatus.SAT


class TestSmtlibExport:
    def test_symbols_quoted_when_needed(self):
        assert smtlib_symbol("plain_name") == "plain_name"
        assert smtlib_symbol("f::x#f0") == "|f::x#f0|"
        assert smtlib_symbol("0starts_digit") == "|0starts_digit|"

    def test_term_rendering(self, mgr):
        x = mgr.bv_var("x", 8)
        term = mgr.eq(mgr.bvadd(x, mgr.bv_const(1, 8)), x)
        assert term_to_smtlib(term) == "(= (bvadd x (_ bv1 8)) x)"

    def test_bool_ops(self, mgr):
        p, q = mgr.bool_var("p"), mgr.bool_var("q")
        term = mgr.implies(mgr.and_(p, q), mgr.or_(p, q))
        text = term_to_smtlib(term)
        assert text == "(=> (and p q) (or p q))"

    def test_script_declares_all_vars(self, mgr):
        x = mgr.bv_var("x", 8)
        p = mgr.bool_var("p")
        script = to_smtlib_script([mgr.implies(p, mgr.ult(x, x))])
        assert "(set-logic QF_BV)" in script
        assert "(declare-fun p () Bool)" in script
        assert "(declare-fun x () (_ BitVec 8))" in script
        assert script.rstrip().endswith("(check-sat)")

    def test_status_annotation(self, mgr):
        script = to_smtlib_script([mgr.true], expected="sat")
        assert "(set-info :status sat)" in script

    def test_model_rendering(self, mgr):
        x = mgr.bv_var("x", 8)
        p = mgr.bool_var("p")
        text = model_to_smtlib({x: 5, p: 1})
        assert "(define-fun p () Bool true)" in text
        assert "(_ bv5 8)" in text

    def test_export_of_real_path_condition(self):
        """A full engine-produced condition exports cleanly."""
        from repro.checkers import NullDereferenceChecker
        from repro.fusion import (ConditionTransformer, assemble_condition,
                                  prepare_pdg)
        from repro.lang import compile_source
        from repro.pdg import compute_slice
        from repro.sparse import collect_candidates

        pdg = prepare_pdg(compile_source("""
        fun f(a) {
          p = null;
          if (a > 20) { deref(p); }
          return 0;
        }
        """))
        [candidate] = collect_candidates(pdg, NullDereferenceChecker())
        the_slice = compute_slice(pdg, [candidate.path])
        transformer = ConditionTransformer(pdg)
        needed = {fn: transformer.needed_key(the_slice, fn)
                  for fn in the_slice.needed}

        def instance(fn, skip):
            return transformer.template(
                fn, needed.get(fn, frozenset())).constraints

        constraints = assemble_condition(transformer, [candidate.path],
                                         the_slice, instance)
        script = to_smtlib_script(constraints, expected="sat")
        assert "bvsgt" not in script  # gt is encoded as flipped bvslt
        assert "(assert" in script and "|f::a#f0|" in script
