"""Literal reproductions of the paper's worked examples.

Each test re-creates a figure or in-text example and checks the artifact
the paper derives from it (the slice of Example 3.3, the path condition
of Example 3.4, the quick path of Figure 3, the constant propagation of
Figure 9).
"""

from repro.checkers import NullDereferenceChecker, cwe402_checker
from repro.fusion import (FusionEngine, IrBasedSmtSolver,
                          QuickPathTable, Shape, prepare_pdg)
from repro.lang import compile_source
from repro.pdg import compute_slice
from repro.smt import SmtSolver
from repro.sparse import collect_candidates

#: Figure 7's function, with a deref sink standing in for the path's use
#: of r (the paper tracks pi = (p=<p>, q=p, r=q)).
FIGURE7 = """
fun foo(a, p) {
  b = a > 20;
  if (b) {
    q = p;
    d = a * 2;
    e = d > 90;
    if (e) {
      r = q;
      deref(r);
    }
  }
  return 0;
}
fun entry(a) {
  x = null;
  z = foo(a, x);
  return z;
}
"""


class TestFigure7:
    """Example 3.3/3.4: slicing and translating foo's dependence graph."""

    def setup_method(self):
        self.pdg = prepare_pdg(compile_source(FIGURE7))
        candidates = collect_candidates(self.pdg, NullDereferenceChecker())
        [self.candidate] = candidates
        self.slice = compute_slice(self.pdg, [self.candidate.path])

    def test_both_branch_requirements(self):
        # Rule (2): the path control-depends on if(b) and if(e),
        # transitively — both must be true.
        requirements = [(r.vertex.stmt.cond.name, r.value)
                        for r in self.slice.requirements]
        assert ("b", True) in requirements
        assert ("e", True) in requirements

    def test_slice_contains_condition_chain(self):
        # Example 3.3: the slice holds everything the two if-statements
        # transitively data-depend on: b = a>20, d = a*2, e = d>90, a.
        names = {v.var.name for v in self.slice.needed_in("foo")}
        assert {"b", "d", "e", "a"} <= names

    def test_slice_excludes_the_path_itself(self):
        # "the slice G[pi] contains all vertices and edges except those
        # in pi" — q and r are path vertices, not slice members.
        names = {v.var.name for v in self.slice.needed_in("foo")}
        assert "q" not in names and "r" not in names

    def test_example34_condition_semantics(self):
        # The translated condition must hold exactly when a > 20 and
        # 2a > 90 — i.e. a in (45, 127] signed.
        solver = IrBasedSmtSolver(self.pdg)
        constraints = solver.condition_of([self.candidate.path], self.slice)
        mgr = solver.transformer.manager
        smt = SmtSolver(mgr)
        result = smt.check(constraints, want_model=True)
        assert result.is_sat
        a_var = next(v for v in mgr.conj(constraints).free_vars()
                     if v.name.startswith("foo::a"))
        a_value = result.model[a_var]
        from repro.smt import to_signed
        signed = to_signed(a_value, 8)
        assert signed > 20 and to_signed((a_value * 2) % 256, 8) > 90

    def test_condition_unsat_when_a_constrained_low(self):
        solver = IrBasedSmtSolver(self.pdg)
        constraints = list(
            solver.condition_of([self.candidate.path], self.slice))
        mgr = solver.transformer.manager
        a_var = next(v for v in mgr.conj(constraints).free_vars()
                     if v.name.startswith("foo::a"))
        constraints.append(mgr.slt(a_var, mgr.bv_const(10, 8)))
        assert SmtSolver(mgr).check(constraints).is_unsat


class TestFigure3QuickPath:
    """Figure 3: 'we can establish a quick path from the vertex y=2x to
    the vertex return z', so the second call to bar needs no traversal."""

    def test_bar_summary_is_the_quick_path(self):
        pdg = prepare_pdg(compile_source("""
        fun bar(x) {
          y = x * 2;
          z = y;
          return z;
        }
        fun foo(a, b) {
          c = bar(a);
          d = bar(b);
          e = c < d;
          if (e) { leak(a); }
          return 0;
        }
        """))
        table = QuickPathTable(pdg)
        summary = table.summary("bar")
        assert summary.shape is Shape.AFFINE
        assert (summary.scale, summary.param_index) == (2, 0)
        # The second lookup is a cache hit: O(1), no traversal of bar.
        hits_before = table.hits
        table.summary("bar")
        assert table.hits == hits_before + 1


class TestFigure9ConstantPropagation:
    """Figure 9: after inter-procedural constant propagation, d = qux(b)
    with b = 5 resolves to d = 10 and the call edge labels disappear."""

    SRC = """
    fun qux(x) {
      y = x * 2;
      return y;
    }
    fun f(a) {
      p = null;
      b = 5;
      d = qux(b);
      c = qux(a);
      g = d == 10;
      if (g) { deref(p); }
      return 0;
    }
    """

    def test_d_resolves_to_constant_without_cloning(self):
        pdg = prepare_pdg(compile_source(self.SRC))
        [candidate] = collect_candidates(pdg, NullDereferenceChecker())
        the_slice = compute_slice(pdg, [candidate.path])
        solver = IrBasedSmtSolver(pdg)
        result = solver.solve([candidate.path], the_slice)
        # d == 10 is forced, so the guard holds: SAT, no cloning of qux.
        assert result.is_sat
        assert solver.stats.clones == 0
        assert result.decided_in_preprocess

    def test_guard_on_wrong_constant_is_infeasible(self):
        src = self.SRC.replace("d == 10", "d == 11")
        pdg = prepare_pdg(compile_source(src))
        result = FusionEngine(pdg).analyze(NullDereferenceChecker())
        assert result.bugs == []


class TestExample32:
    """Example 3.2: the taint analysis needs both pi1 and pi2 feasible
    simultaneously (password and address into send(c, d))."""

    def test_paper_taint_scenario(self):
        pdg = prepare_pdg(compile_source("""
        fun f() {
          a = get_password();
          b = user_ip();
          c = a;
          d = b;
          send(c, d);
          return 0;
        }
        """))
        checker = cwe402_checker()
        # get_password is a CWE-402 source; user_ip is not — exactly one
        # tainted flow reaches the sink here.
        result = FusionEngine(pdg).analyze(checker)
        assert len(result.bugs) == 1
        [report] = result.bugs
        names = [s.vertex.var.name for s in report.candidate.path.steps]
        assert names[0] == "a" and "c" in names
