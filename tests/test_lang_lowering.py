"""Tests for lowering: gated SSA, loop unrolling, return predication."""

import pytest

from repro.lang import (Assign, Binary, BinOp, Branch, Call, Const,
                        IfThenElse, Identity, LoweringConfig, LoweringError,
                        Return, Var, VarType, compile_source, format_function)

FIGURE1 = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) {
    return p;
  }
  return 0;
}
"""


def stmts_of(prog, name):
    return list(prog.functions[name].statements())


class TestBasicLowering:
    def test_figure1_bar(self):
        prog = compile_source(FIGURE1)
        bar = prog.functions["bar"]
        kinds = [type(s).__name__ for s in bar.body]
        assert kinds == ["Identity", "Binary", "Assign", "Assign", "Return"]

    def test_ssa_single_definition(self):
        prog = compile_source("""
        fun f(a) {
          x = a;
          x = x + 1;
          x = x + 2;
          return x;
        }
        """)
        prog.validate()  # would raise on SSA violations
        names = [s.result.name for s in stmts_of(prog, "f")]
        assert len(names) == len(set(names))

    def test_parameters_get_identity_statements(self):
        prog = compile_source("fun f(a, b) { return a; }")
        body = prog.functions["f"].body
        assert isinstance(body[0], Identity) and body[0].result.name == "a"
        assert isinstance(body[1], Identity) and body[1].result.name == "b"

    def test_null_literal_marked(self):
        prog = compile_source("fun f() { p = null; return p; }")
        assign = prog.functions["f"].body[0]
        assert isinstance(assign, Assign)
        assert isinstance(assign.source, Const) and assign.source.is_null

    def test_single_return_per_function(self):
        prog = compile_source(FIGURE1)
        for f in prog.functions.values():
            returns = [s for s in f.statements() if isinstance(s, Return)]
            assert len(returns) == 1

    def test_unknown_callee_becomes_extern(self):
        prog = compile_source("fun f(a) { x = mystery(a); return x; }")
        assert "mystery" in prog.externs


class TestGatedSsa:
    def test_if_merge_produces_ite(self):
        prog = compile_source("""
        fun f(a) {
          x = 1;
          if (a < 5) { x = 2; }
          return x;
        }
        """)
        ites = [s for s in stmts_of(prog, "f") if isinstance(s, IfThenElse)]
        # One merge for x, plus the return-predication merges.
        x_merges = [s for s in ites if s.result.name.startswith("x")]
        assert len(x_merges) == 1
        merge = x_merges[0]
        assert merge.then_value == Var("x.1", VarType.INT) or \
            isinstance(merge.then_value, (Var, Const))

    def test_else_branch_guarded_by_negation(self):
        prog = compile_source("""
        fun f(a) {
          x = 0;
          if (a < 5) { x = 1; } else { x = 2; }
          return x;
        }
        """)
        branches = [s for s in stmts_of(prog, "f") if isinstance(s, Branch)]
        assert len(branches) == 2
        # The second branch's condition is the negation (EQ cond false).
        neg_defs = [s for s in stmts_of(prog, "f")
                    if isinstance(s, Binary) and s.op is BinOp.EQ
                    and isinstance(s.rhs, Const)
                    and s.rhs.type is VarType.BOOL]
        assert len(neg_defs) == 1

    def test_branch_local_variable_out_of_scope_after_join(self):
        with pytest.raises(LoweringError):
            compile_source("""
            fun f(a) {
              if (a < 5) { t = 1; }
              return t;
            }
            """)

    def test_variable_defined_in_both_branches_visible(self):
        prog = compile_source("""
        fun f(a) {
          if (a < 5) { t = 1; } else { t = 2; }
          return t;
        }
        """)
        ret = prog.functions["f"].return_stmt
        assert ret is not None

    def test_nested_if_ordering(self):
        prog = compile_source("""
        fun f(a, b) {
          x = 0;
          if (a < 5) {
            if (b < 5) { x = 1; }
          }
          return x;
        }
        """)
        prog.validate()
        branches = [s for s in stmts_of(prog, "f") if isinstance(s, Branch)]
        assert len(branches) == 2
        outer = [b for b in branches
                 if any(isinstance(s, Branch) for s in b.body)]
        assert len(outer) == 1


class TestLoopUnrolling:
    def test_while_becomes_nested_ifs(self):
        prog = compile_source("""
        fun f(n) {
          i = 0;
          while (i < n) { i = i + 1; }
          return i;
        }
        """, LoweringConfig(loop_unroll=3, loop_strategy="unroll"))
        branches = [s for s in stmts_of(prog, "f") if isinstance(s, Branch)]
        assert len(branches) == 3
        # Each unrolled iteration re-evaluates the condition.
        conds = [s for s in stmts_of(prog, "f")
                 if isinstance(s, Binary) and s.op is BinOp.LT]
        assert len(conds) == 3

    def test_unroll_zero_drops_loop(self):
        prog = compile_source("""
        fun f(n) {
          i = 0;
          while (i < n) { i = i + 1; }
          return i;
        }
        """, LoweringConfig(loop_unroll=0))
        assert not any(isinstance(s, Branch) for s in stmts_of(prog, "f"))

    def test_loop_carried_values_chain(self):
        prog = compile_source("""
        fun f(n) {
          i = 0;
          while (i < n) { i = i + 1; }
          return i;
        }
        """, LoweringConfig(loop_unroll=2, loop_strategy="unroll"))
        prog.validate()
        # i is incremented twice along the all-taken path: i, i.1, i.2 exist.
        names = {s.result.name for s in stmts_of(prog, "f")}
        assert {"i", "i.1", "i.2"} <= names


class TestReturnPredication:
    def test_early_return_merges_retval(self):
        prog = compile_source(FIGURE1)
        foo = prog.functions["foo"]
        ret = foo.return_stmt
        assert ret is not None
        # The returned operand is a merge, not a constant.
        assert isinstance(ret.source, Var)

    def test_code_after_possible_return_is_guarded(self):
        prog = compile_source("""
        fun f(a, c) {
          if (a < 5) { return 0; }
          send(c);
          return 1;
        }
        """)
        # send must sit inside a branch (guarded by !retflag), not at the
        # top level.
        top_level_calls = [s for s in prog.functions["f"].body
                           if isinstance(s, Call)]
        assert not top_level_calls
        nested_calls = [s for s in stmts_of(prog, "f") if isinstance(s, Call)]
        assert len(nested_calls) == 1

    def test_return_in_both_branches_ends_function(self):
        prog = compile_source("""
        fun f(a) {
          if (a < 5) { return 1; } else { return 2; }
        }
        """)
        prog.validate()
        ret = prog.functions["f"].return_stmt
        assert ret is not None

    def test_statements_after_unconditional_return_dropped(self):
        prog = compile_source("""
        fun f(a) {
          return 1;
          x = 2;
          return x;
        }
        """)
        f = prog.functions["f"]
        assert not any(s.result.name.startswith("x")
                       for s in f.statements())

    def test_missing_return_yields_zero(self):
        prog = compile_source("fun f(a) { x = a; }")
        ret = prog.functions["f"].return_stmt
        assert ret is not None


class TestTypeChecking:
    def test_branch_condition_must_be_bool(self):
        with pytest.raises(LoweringError):
            compile_source("fun f(a) { if (a) { x = 1; } return 0; }")

    def test_arith_on_bool_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("fun f(a) { x = (a < 1) + 2; return x; }")

    def test_logic_on_int_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("fun f(a) { x = a && a; return 0; }")

    def test_mixed_return_types_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("""
            fun f(a) {
              if (a < 1) { return a < 2; }
              return a;
            }
            """)

    def test_bool_function_type_inferred(self):
        prog = compile_source("""
        fun is_small(a) { return a < 10; }
        fun f(a) {
          if (is_small(a)) { return 1; }
          return 0;
        }
        """)
        prog.validate()

    def test_undefined_variable_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("fun f() { return nope; }")

    def test_percent_identifiers_rejected(self):
        # '%'-prefixed names are reserved for internal temporaries; the
        # lexer refuses them outright.
        with pytest.raises(Exception):
            compile_source("fun f() { %x = 1; return 0; }")


class TestPrinting:
    def test_format_function_round_trips_structure(self):
        prog = compile_source(FIGURE1)
        text = format_function(prog.functions["foo"])
        assert "fun foo(a, b)" in text
        assert "bar(a)" in text and "bar(b)" in text
        assert "if (" in text
