"""Example 3.2: simultaneous feasibility of several dependence paths.

The paper's taint example needs TWO paths — the password into ``c`` and
the address into ``d`` — to be feasible at once: the analysis solves
``phi_pi1 /\\ phi_pi2``.  These tests exercise that conjunction: paths
that are individually feasible but guarded by contradictory conditions
must be rejected jointly.
"""

from repro.checkers import cwe402_checker
from repro.fusion import FusionEngine, prepare_pdg
from repro.lang import compile_source
from repro.sparse import FrameTable, collect_candidates

#: Both flows must reach send() for the leak to happen; the guards on the
#: two flows contradict (a > 50 vs a < 10), so the joint check fails even
#: though each path alone is feasible.
CONTRADICTORY = """
fun f(a) {
  pw = getpass();
  ip = getpass();
  c = 0;
  d = 0;
  if (a > 50) { c = pw; }
  if (a < 10) { d = ip; }
  sendmsg(c, d);
  return 0;
}
"""

COMPATIBLE = """
fun f(a) {
  pw = getpass();
  ip = getpass();
  c = 0;
  d = 0;
  if (a > 50) { c = pw; }
  if (a > 60) { d = ip; }
  sendmsg(c, d);
  return 0;
}
"""


def joint_paths(src):
    pdg = prepare_pdg(compile_source(src))
    frames = FrameTable()
    candidates = collect_candidates(pdg, cwe402_checker(), frames=frames)
    # One flow per source, both ending at the same sink call.
    sinks = {c.sink.index for c in candidates}
    assert len(sinks) == 1
    assert len({c.source.index for c in candidates}) == 2
    return pdg, [c.path for c in candidates]


class TestSimultaneousFeasibility:
    def test_individually_feasible(self):
        pdg, paths = joint_paths(CONTRADICTORY)
        engine = FusionEngine(pdg)
        for path in paths:
            assert engine.check_simultaneous([path]).is_sat

    def test_contradictory_guards_jointly_infeasible(self):
        pdg, paths = joint_paths(CONTRADICTORY)
        engine = FusionEngine(pdg)
        assert engine.check_simultaneous(paths).is_unsat

    def test_compatible_guards_jointly_feasible(self):
        pdg, paths = joint_paths(COMPATIBLE)
        engine = FusionEngine(pdg)
        assert engine.check_simultaneous(paths).is_sat

    def test_shared_frame_table_keeps_ids_unique(self):
        pdg, paths = joint_paths(COMPATIBLE)
        fids = set()
        for path in paths:
            for frame in path.frames():
                fids.add(frame.fid)
        # Same function, same root key -> the root frame is shared, which
        # is exactly what makes the conjunction talk about one instance.
        assert len(fids) == 1
