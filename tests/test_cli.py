"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

SOURCE = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
fun safe(a) {
  q = null;
  if (a < a) { deref(q); }
  return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.fl"
    path.write_text(SOURCE)
    return str(path)


class TestScan:
    def test_finds_bug_and_exits_nonzero(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[BUG]" in out and "foo" in out
        assert "safe" not in out  # infeasible filtered by default

    def test_show_infeasible(self, source_file, capsys):
        main(["scan", source_file, "--checker", "null-deref",
              "--show-infeasible"])
        out = capsys.readouterr().out
        assert "[infeasible]" in out and "safe" in out

    def test_json_output(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["engine"] == "fusion"
        assert len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert finding["source_function"] == "foo"
        assert finding["path"][0] == "p"

    def test_witness_extraction(self, source_file, capsys):
        main(["scan", source_file, "--checker", "null-deref", "--witness",
              "--json"])
        payload = json.loads(capsys.readouterr().out)
        witness = payload["findings"][0].get("witness", {})
        assert witness, "expected a concrete model"
        # The witness must make the guard true: c < d (8-bit signed).
        c = next(v for k, v in witness.items() if k.endswith("::c#f0"))
        d = next(v for k, v in witness.items() if k.endswith("::d#f0"))
        from repro.smt import to_signed
        assert to_signed(c, 8) < to_signed(d, 8)

    def test_clean_program_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.fl"
        path.write_text("fun f(a) { return a + 1; }")
        code = main(["scan", str(path)])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_dot_export(self, source_file, tmp_path, capsys):
        dot_file = tmp_path / "pdg.dot"
        main(["scan", source_file, "--checker", "null-deref",
              "--dot", str(dot_file)])
        text = dot_file.read_text()
        assert text.startswith("digraph pdg")
        assert "style=dashed" in text

    def test_engine_selection(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref",
                     "--engine", "pinpoint"])
        assert code == 1
        assert "[BUG]" in capsys.readouterr().out

    def test_stdin_input(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "fun f() { p = null; deref(p); return 0; }"))
        code = main(["scan", "-", "--checker", "null-deref"])
        assert code == 1


class TestOtherCommands:
    def test_subjects_lists_registry(self, capsys):
        assert main(["subjects"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "wine" in out

    def test_bench_single_cell(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # BENCH_incremental.json lands here
        code = main(["bench", "--subject", "mcf", "--engine", "fusion"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["subject"] == "mcf"
        assert payload["failure"] is None
        assert len(payload["query_seconds"]) == payload["queries"]
        assert len(payload["query_clauses"]) == payload["queries"]
        record = json.loads((tmp_path / "BENCH_incremental.json")
                            .read_text())
        assert record["schema"] == "repro-bench-incremental/1"
        assert record["incremental_enabled"] is True
        assert record["row"]["subject"] == "mcf"
        assert set(record["incremental"]) == {
            "sessions", "assumption_solves", "reused_clauses",
            "encoder_hits", "learned_kept"}

    def test_bench_no_json_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--subject", "mcf", "--engine", "fusion",
                     "--no-bench-json", "--no-incremental"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["failure"] is None
        assert not (tmp_path / "BENCH_incremental.json").exists()


class TestVerboseScan:
    def test_verbose_report(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref",
                     "--verbose"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Null pointer dereference" in out
        assert "trace:" in out and "feasibility:" in out
        assert "witness:" in out  # --verbose implies model extraction

    def test_verbose_with_infeasible(self, source_file, capsys):
        main(["scan", source_file, "--checker", "null-deref",
              "--verbose", "--show-infeasible"])
        out = capsys.readouterr().out
        assert "INFEASIBLE" in out


DIVZERO_SOURCE = """
fun main(a) {
  z = 0;
  b = 4;
  c = b - 4;
  safe = a / 2;
  bad = a / z;
  worse = a % c;
  return bad + worse + safe;
}
"""


class TestLint:
    def test_clean_file_exits_zero(self, source_file, capsys):
        assert main(["lint", source_file]) == 0
        out = capsys.readouterr().out
        assert "PDG OK" in out and "vertices" in out

    def test_registry_subject(self, capsys):
        assert main(["lint", "mcf"]) == 0
        assert "PDG OK" in capsys.readouterr().out

    def test_json_output(self, source_file, capsys):
        assert main(["lint", source_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["errors"] == []

    def test_stdin(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("fun f(a) { return a; }"))
        assert main(["lint", "-"]) == 0

    def test_parse_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.fl"
        bad.write_text("fun f( { nope")
        assert main(["lint", str(bad)]) == 2
        assert "repro lint:" in capsys.readouterr().err

    def test_type_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.fl"
        bad.write_text("fun f(a) { if (a) { b = 1; } return 0; }")
        assert main(["lint", str(bad)]) == 2


class TestTriageFlag:
    def test_analyze_with_triage(self, source_file, capsys):
        code = main(["analyze", "--subject", source_file, "--triage",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "triaged" in payload["summary"]
        feasible = [f for f in payload["findings"] if f["feasible"]]
        assert len(feasible) == 1
        assert feasible[0]["source_function"] == "foo"

    def test_triage_report_set_matches_no_triage(self, source_file,
                                                 capsys):
        main(["analyze", "--subject", source_file, "--json"])
        base = json.loads(capsys.readouterr().out)["findings"]
        main(["analyze", "--subject", source_file, "--triage", "--json"])
        triaged = json.loads(capsys.readouterr().out)["findings"]
        def strip(findings):
            return [(f["source_function"], f["sink_function"],
                     f["feasible"]) for f in findings]
        assert strip(triaged) == strip(base)

    def test_triage_rejected_for_infer(self, source_file, capsys):
        code = main(["analyze", "--subject", source_file,
                     "--engine", "infer", "--triage"])
        assert code == 2
        assert "path-sensitive" in capsys.readouterr().err

    def test_triage_telemetry(self, source_file, tmp_path, capsys):
        out = tmp_path / "telemetry.json"
        main(["analyze", "--subject", source_file, "--triage",
              "--telemetry", str(out)])
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-exec-telemetry/10"
        triage = payload["triage"]
        assert triage["decided_infeasible"] + triage["decided_feasible"] \
            + triage["sent_to_smt"] >= 1


class TestDivZeroChecker:
    def test_finds_constant_zero_divisors(self, tmp_path, capsys):
        path = tmp_path / "div.fl"
        path.write_text(DIVZERO_SOURCE)
        code = main(["analyze", "--subject", str(path),
                     "--checker", "div-zero", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        feasible = [f for f in payload["findings"] if f["feasible"]]
        # `a / z` (literal zero) and `a % c` (constant-folded zero) are
        # flagged; `a / 2` is not.
        assert len(feasible) == 2
        sinks = {f["sink"] for f in feasible}
        assert any("/" in s for s in sinks)
        assert any("%" in s for s in sinks)

    def test_triage_composes_with_divzero(self, tmp_path, capsys):
        path = tmp_path / "div.fl"
        path.write_text(DIVZERO_SOURCE)
        code = main(["analyze", "--subject", str(path),
                     "--checker", "div-zero", "--triage", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len([f for f in payload["findings"] if f["feasible"]]) == 2
