"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

SOURCE = """
fun bar(x) {
  y = x * 2;
  z = y;
  return z;
}
fun foo(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
fun safe(a) {
  q = null;
  if (a < a) { deref(q); }
  return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.fl"
    path.write_text(SOURCE)
    return str(path)


class TestScan:
    def test_finds_bug_and_exits_nonzero(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref"])
        out = capsys.readouterr().out
        assert code == 1
        assert "[BUG]" in out and "foo" in out
        assert "safe" not in out  # infeasible filtered by default

    def test_show_infeasible(self, source_file, capsys):
        main(["scan", source_file, "--checker", "null-deref",
              "--show-infeasible"])
        out = capsys.readouterr().out
        assert "[infeasible]" in out and "safe" in out

    def test_json_output(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["engine"] == "fusion"
        assert len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert finding["source_function"] == "foo"
        assert finding["path"][0] == "p"

    def test_witness_extraction(self, source_file, capsys):
        main(["scan", source_file, "--checker", "null-deref", "--witness",
              "--json"])
        payload = json.loads(capsys.readouterr().out)
        witness = payload["findings"][0].get("witness", {})
        assert witness, "expected a concrete model"
        # The witness must make the guard true: c < d (8-bit signed).
        c = next(v for k, v in witness.items() if k.endswith("::c#f0"))
        d = next(v for k, v in witness.items() if k.endswith("::d#f0"))
        from repro.smt import to_signed
        assert to_signed(c, 8) < to_signed(d, 8)

    def test_clean_program_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.fl"
        path.write_text("fun f(a) { return a + 1; }")
        code = main(["scan", str(path)])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_dot_export(self, source_file, tmp_path, capsys):
        dot_file = tmp_path / "pdg.dot"
        main(["scan", source_file, "--checker", "null-deref",
              "--dot", str(dot_file)])
        text = dot_file.read_text()
        assert text.startswith("digraph pdg")
        assert "style=dashed" in text

    def test_engine_selection(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref",
                     "--engine", "pinpoint"])
        assert code == 1
        assert "[BUG]" in capsys.readouterr().out

    def test_stdin_input(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "fun f() { p = null; deref(p); return 0; }"))
        code = main(["scan", "-", "--checker", "null-deref"])
        assert code == 1


class TestOtherCommands:
    def test_subjects_lists_registry(self, capsys):
        assert main(["subjects"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "wine" in out

    def test_bench_single_cell(self, capsys):
        code = main(["bench", "--subject", "mcf", "--engine", "fusion"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["subject"] == "mcf"
        assert payload["failure"] is None


class TestVerboseScan:
    def test_verbose_report(self, source_file, capsys):
        code = main(["scan", source_file, "--checker", "null-deref",
                     "--verbose"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Null pointer dereference" in out
        assert "trace:" in out and "feasibility:" in out
        assert "witness:" in out  # --verbose implies model extraction

    def test_verbose_with_infeasible(self, source_file, capsys):
        main(["scan", source_file, "--checker", "null-deref",
              "--verbose", "--show-infeasible"])
        out = capsys.readouterr().out
        assert "INFEASIBLE" in out
