"""Coverage for the IR printer, dot exports, and small odds and ends."""

import pytest

from repro.lang import (BinOp, Branch, Const, Var, VarType, compile_source,
                        format_function, format_program, format_stmt)
from repro.lang.ir import Assign, Binary, Function, Identity, IfThenElse
from repro.pdg import build_pdg, compute_slice, pdg_to_dot
from repro.sparse import collect_candidates
from repro.checkers import NullDereferenceChecker

SRC = """
fun helper(x) {
  y = x + 1;
  return y;
}
fun f(a) {
  p = null;
  b = helper(a);
  if (b > 3) {
    deref(p);
  }
  return 0;
}
"""


class TestPrettyPrinter:
    def test_nested_branch_indentation(self):
        prog = compile_source("""
        fun f(a, b) {
          x = 0;
          if (a > 1) {
            if (b > 2) { x = 9; }
          }
          return x;
        }
        """)
        text = format_function(prog.functions["f"])
        lines = text.splitlines()
        inner = next(line for line in lines if "x.1" in line
                     and "ite" not in line)
        assert inner.startswith("      ")  # two levels of nesting

    def test_program_includes_externs(self):
        prog = compile_source(SRC)
        text = format_program(prog)
        assert "extern deref;" in text
        assert "fun helper(x)" in text and "fun f(a)" in text

    def test_single_statement_format(self):
        stmt = Binary(Var("c", VarType.BOOL), BinOp.LT,
                      Var("a"), Const(5))
        assert format_stmt(stmt) == "c = a < 5"

    def test_ite_repr(self):
        stmt = IfThenElse(Var("m"), Var("c", VarType.BOOL), Var("x"),
                          Const(0))
        assert repr(stmt) == "m = ite(c, x, 0)"

    def test_identity_repr(self):
        assert repr(Identity(Var("a"))) == "a = <a>"


class TestDotExports:
    def test_slice_highlighting(self):
        pdg = build_pdg(compile_source(SRC))
        [candidate] = collect_candidates(pdg, NullDereferenceChecker())
        the_slice = compute_slice(pdg, [candidate.path])
        dot = pdg_to_dot(pdg, highlight=the_slice)
        assert "lightyellow" in dot  # sliced vertices are filled

    def test_plain_export_has_clusters(self):
        dot = pdg_to_dot(build_pdg(compile_source(SRC)))
        assert "subgraph cluster_helper" in dot
        assert "subgraph cluster_f" in dot

    def test_quotes_escaped(self):
        dot = pdg_to_dot(build_pdg(compile_source(SRC)))
        # Every label is well-formed (balanced quotes per line).
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0


class TestIrHelpers:
    def test_function_size_counts_nested(self):
        prog = compile_source(SRC)
        f = prog.functions["f"]
        flat = sum(1 for _ in f.statements())
        assert f.size() == flat
        assert any(isinstance(s, Branch) for s in f.statements())

    def test_defined_vars_maps_every_statement(self):
        prog = compile_source(SRC)
        f = prog.functions["f"]
        defined = f.defined_vars()
        assert set(defined) == {s.result.name for s in f.statements()}

    def test_program_size_sums_functions(self):
        prog = compile_source(SRC)
        assert prog.size() == sum(f.size()
                                  for f in prog.functions.values())

    def test_validate_catches_double_definition(self):
        fn = Function("bad", (Var("a"),), [
            Identity(Var("a")),
            Assign(Var("x"), Var("a")),
            Assign(Var("x"), Const(1)),
        ])
        from repro.lang.ir import Program
        prog = Program()
        prog.add(fn)
        with pytest.raises(ValueError, match="SSA"):
            prog.validate()

    def test_validate_catches_undefined_use(self):
        fn = Function("bad", (), [Assign(Var("x"), Var("ghost"))])
        from repro.lang.ir import Program
        prog = Program()
        prog.add(fn)
        with pytest.raises(ValueError, match="undefined"):
            prog.validate()

    def test_duplicate_function_rejected(self):
        from repro.lang.ir import Program
        prog = Program()
        prog.add(Function("f", (), []))
        with pytest.raises(ValueError, match="duplicate"):
            prog.add(Function("f", (), []))
