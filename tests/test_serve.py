"""Protocol-level unit tests for the serve daemon.

Pins the daemon's failure contract: malformed input of every shape gets
a structured error envelope (never a crash, never a dropped request),
deadline overruns degrade to UNKNOWN verdicts, shutdown drains in-flight
jobs before answering, and a hot engine's counters are per-request.
"""

import asyncio
import json
import tempfile

import pytest

from repro.bench import SubjectSpec, generate_subject
from repro.checkers import NullDereferenceChecker
from repro.engine import AnalysisSession, EngineSettings
from repro.exec import ArtifactStore, FaultPlan, Telemetry
from repro.fusion import FusionEngine, prepare_pdg
from repro.lang import LoweringConfig, compile_source
from repro.serve import (COMPILE_ERROR, INVALID_PARAMS, INVALID_REQUEST,
                         METHOD_NOT_FOUND, OVERLOADED, PARSE_ERROR,
                         SHUTTING_DOWN, UNKNOWN_TENANT, ServeApp,
                         ServeConfig, run_stdio)
from repro.serve.tenancy import splice_function

SOURCE = """
fun bar(x) {
  y = x * 2;
  return y;
}
fun main(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < d) { deref(p); }
  return 0;
}
"""

#: Same interface, flipped guard: the deref becomes infeasible.
EDITED_MAIN = """fun main(a, b) {
  p = null;
  c = bar(a);
  d = bar(b);
  if (c < c) { deref(p); }
  return 0;
}"""


def fuzz_source(seed: int) -> str:
    spec = SubjectSpec("serve-unit", seed=seed, num_functions=4,
                       layers=2, avg_stmts=5, call_fanout=2,
                       null_bugs=(1, 0, 1))
    return generate_subject(spec).source


def run(coro):
    return asyncio.run(coro)


def rpc(app, method, request_id=1, **params):
    return app.handle({"jsonrpc": "2.0", "id": request_id,
                       "method": method, "params": params})


async def make_app(tmp, **kwargs) -> ServeApp:
    return ServeApp(ServeConfig(cache_root=tmp, **kwargs))


# ---------------------------------------------------------------------
# malformed requests → structured errors, never a crash


def test_malformed_json_is_parse_error():
    async def main():
        app = ServeApp()
        try:
            envelope = await app.handle("{nope")
            assert envelope["error"]["code"] == PARSE_ERROR
            assert envelope["id"] is None
        finally:
            app.close()
    run(main())


@pytest.mark.parametrize("raw,code", [
    ("[1, 2]", INVALID_REQUEST),                    # not an object
    ('{"id": 5, "method": "ping"}', INVALID_REQUEST),  # no jsonrpc
    ('{"jsonrpc": "2.0", "id": 5}', INVALID_REQUEST),  # no method
    ('{"jsonrpc": "2.0", "id": 5, "method": 7}', INVALID_REQUEST),
    ('{"jsonrpc": "2.0", "id": 5, "method": "ping", "params": 3}',
     INVALID_PARAMS),
])
def test_invalid_envelopes(raw, code):
    async def main():
        app = ServeApp()
        try:
            envelope = await app.handle(raw)
            assert envelope["error"]["code"] == code
            if '"id": 5' in raw:
                # The id is recovered so the error still correlates.
                assert envelope["id"] == 5
        finally:
            app.close()
    run(main())


def test_unknown_method_and_bad_params():
    async def main():
        app = ServeApp()
        try:
            envelope = await rpc(app, "frobnicate")
            assert envelope["error"]["code"] == METHOD_NOT_FOUND
            envelope = await rpc(app, "initialize", tenant="t")
            assert envelope["error"]["code"] == INVALID_PARAMS
            envelope = await rpc(app, "analyze", tenant="t",
                                 checker="no-such-checker")
            assert envelope["error"]["code"] == INVALID_PARAMS
            envelope = await rpc(app, "analyze", tenant="t",
                                 deadline_s=-1)
            assert envelope["error"]["code"] == INVALID_PARAMS
        finally:
            app.close()
    run(main())


def test_unknown_tenant_and_compile_error():
    async def main():
        with tempfile.TemporaryDirectory() as tmp:
            app = await make_app(tmp)
            try:
                envelope = await rpc(app, "analyze", tenant="ghost")
                assert envelope["error"]["code"] == UNKNOWN_TENANT
                envelope = await rpc(app, "initialize", tenant="t",
                                     source="fun main( {")
                assert envelope["error"]["code"] == COMPILE_ERROR
                # The failed initialize left no broken session behind.
                names = (await rpc(app, "tenants"))["result"]["tenants"]
                assert names == []
            finally:
                app.close()
    run(main())


def test_bad_edit_never_bricks_the_session():
    async def main():
        with tempfile.TemporaryDirectory() as tmp:
            app = await make_app(tmp)
            try:
                ok = await rpc(app, "initialize", tenant="t",
                               source=SOURCE)
                assert ok["result"]["generation"] == 1
                bad = await rpc(app, "update", tenant="t",
                                source="fun main( {")
                assert bad["error"]["code"] == COMPILE_ERROR
                # The previous program version is still analysable.
                res = await rpc(app, "analyze", tenant="t")
                assert "result" in res
                assert res["result"]["generation"] == 1
            finally:
                app.close()
    run(main())


# ---------------------------------------------------------------------
# deadlines, admission, shutdown


def test_deadline_expiry_degrades_to_unknown():
    """An injected pathological delay plus a small per-request deadline
    must yield UNKNOWN verdicts — not a hang, not a crash."""
    async def main():
        with tempfile.TemporaryDirectory() as tmp:
            plan = FaultPlan(delay_on_query={0: 30.0, 1: 30.0, 2: 30.0,
                                            3: 30.0})
            app = await make_app(tmp, fault_plan=plan)
            try:
                await rpc(app, "initialize", tenant="t", source=SOURCE)
                res = await rpc(app, "analyze", tenant="t",
                                deadline_s=0.2)
                counters = res["result"]["counters"]
                assert counters["candidates"] > 0
                assert counters["unknown_queries"] == \
                    counters["candidates"]
                # Soundy bug-finding: UNKNOWN verdicts stay reported
                # (feasible) but carry no witness — nothing was proven.
                assert all(f["witness"] == {}
                           for f in res["result"]["findings"])
            finally:
                app.close()
    run(main())


def test_admission_rejects_with_429_when_full():
    async def main():
        with tempfile.TemporaryDirectory() as tmp:
            app = await make_app(tmp, max_queue=1)
            try:
                app.admission.enter()  # occupy the only slot
                envelope = await rpc(app, "initialize", tenant="t",
                                     source=SOURCE)
                assert envelope["error"]["code"] == OVERLOADED
                assert envelope["error"]["data"]["max_depth"] == 1
                app.admission.leave()
                ok = await rpc(app, "initialize", tenant="t",
                               source=SOURCE)
                assert "result" in ok
                snapshot = (await rpc(app, "telemetry"))["result"]
                assert snapshot["serve"]["rejected"] == 1
            finally:
                app.close()
    run(main())


def test_shutdown_drains_in_flight_jobs():
    async def main():
        with tempfile.TemporaryDirectory() as tmp:
            app = await make_app(tmp)
            try:
                await rpc(app, "initialize", tenant="t", source=SOURCE)
                analyze = asyncio.ensure_future(
                    rpc(app, "analyze", tenant="t"))
                await asyncio.sleep(0)  # let it get admitted
                shutdown = asyncio.ensure_future(rpc(app, "shutdown"))
                res = await analyze
                assert "result" in res, "in-flight job was dropped"
                down = await shutdown
                assert down["result"]["drained"] is True
                late = await rpc(app, "analyze", tenant="t")
                assert late["error"]["code"] == SHUTTING_DOWN
                assert app.stopped.is_set()
            finally:
                app.close()
    run(main())


def test_stdio_round_trip_and_concurrent_ping():
    """The stdio front end answers every line and exits on shutdown.
    The requests are pipelined — analyze arrives right behind
    initialize — so this also pins heavy-request ordering: the analyze
    must see the tenant, never race a 404."""
    async def main():
        reader = asyncio.StreamReader()
        lines = []
        requests = [
            {"jsonrpc": "2.0", "id": 1, "method": "initialize",
             "params": {"tenant": "t", "source": SOURCE}},
            {"jsonrpc": "2.0", "id": 2, "method": "ping", "params": {}},
            {"jsonrpc": "2.0", "id": 3, "method": "analyze",
             "params": {"tenant": "t"}},
            {"jsonrpc": "2.0", "id": 4, "method": "shutdown",
             "params": {}},
        ]
        for request in requests:
            reader.feed_data((json.dumps(request) + "\n").encode())
        reader.feed_eof()
        await run_stdio(None, reader=reader, writeline=lines.append)
        responses = {json.loads(line)["id"]: json.loads(line)
                     for line in lines}
        assert set(responses) == {1, 2, 3, 4}
        assert responses[2]["result"]["pong"] is True
        assert responses[3]["result"]["counters"]["bugs"] >= 0
        assert responses[4]["result"]["drained"] is True
    run(main())


# ---------------------------------------------------------------------
# telemetry /7


def test_telemetry_serve_section_schema():
    async def main():
        with tempfile.TemporaryDirectory() as tmp:
            app = await make_app(tmp)
            try:
                await rpc(app, "initialize", tenant="t", source=SOURCE)
                await rpc(app, "analyze", tenant="t")
                snapshot = (await rpc(app, "telemetry"))["result"]
                assert snapshot["schema"] == "repro-exec-telemetry/10"
                serve = snapshot["serve"]
                for key in ("requests", "errors", "rejected",
                            "sessions_alive", "replayed_verdicts",
                            "queue_depth", "queue_peak",
                            "p50_latency_s", "p95_latency_s"):
                    assert key in serve, key
                assert serve["requests"] >= 2
                assert serve["sessions_alive"] == 1
                assert serve["queue_depth"] == 0
                assert serve["p95_latency_s"] >= serve["p50_latency_s"]
                # Per-request telemetry was folded into the server's.
                assert snapshot["solver"]["total"] > 0
                # /7: the sparsification section rides along.
                reduce = snapshot["reduce"]
                for key in ("views_built", "view_cache_hits",
                            "views_remapped", "views_invalidated",
                            "nodes_kept", "nodes_elided",
                            "edges_kept", "edges_elided",
                            "scc_count", "bypass_edges",
                            "live_sources", "sources_elided"):
                    assert key in reduce, key
                assert reduce["views_built"] == 1
            finally:
                app.close()
    run(main())


def test_update_drops_only_intersecting_views():
    """A source edit invalidates only the per-checker views whose
    footprint intersects the edited function; the rest are remapped
    onto the new PDG instead of rebuilt (docs/sparsification.md)."""
    async def main():
        with tempfile.TemporaryDirectory() as tmp:
            app = await make_app(tmp)
            try:
                await rpc(app, "initialize", tenant="t", source=SOURCE)
                await rpc(app, "analyze", tenant="t",
                          checker="null-deref")
                await rpc(app, "analyze", tenant="t", checker="cwe-23")
                before = (await rpc(app, "telemetry"))["result"]["reduce"]
                assert before["views_built"] == 2
                await rpc(app, "update", tenant="t", function="main",
                          text=EDITED_MAIN)
                await rpc(app, "analyze", tenant="t",
                          checker="null-deref")
                await rpc(app, "analyze", tenant="t", checker="cwe-23")
                after = (await rpc(app, "telemetry"))["result"]["reduce"]
                # The cwe-23 footprint sees no taint in either program
                # version, so its view rode the edit over a remap; the
                # null-deref view observes main's deref and had to be
                # rebuilt.
                assert after["views_remapped"] == \
                    before["views_remapped"] + 1
                assert after["views_invalidated"] == \
                    before["views_invalidated"] + 1
                assert after["views_built"] == before["views_built"] + 1
            finally:
                app.close()
    run(main())


def test_telemetry_merge_folds_counters():
    first, second = Telemetry(), Telemetry()
    first.count("scheduled_queries", 3)
    second.count("scheduled_queries", 2)
    second.record_cache("slice", 4, 1, 0, capacity=16)
    second.record_incremental(sessions=2, assumption_solves=5)
    second.record_memory(100, 10)
    first.record_memory(70, 30)
    first.merge(second)
    merged = first.as_dict()
    assert merged["counters"]["scheduled_queries"] == 5
    assert merged["caches"]["slice"]["hits"] == 4
    assert merged["caches"]["slice"]["capacity"] == 16
    assert merged["incremental"]["assumption_solves"] == 5
    # Memory peaks fold as maxima, not sums.
    assert merged["memory"]["peak_units"] == 100
    assert merged["memory"]["peak_condition_units"] == 30


# ---------------------------------------------------------------------
# function splicing (LSP-style incremental edits)


def test_splice_function_replaces_only_the_named_body():
    spliced = splice_function(SOURCE, "main", EDITED_MAIN)
    assert "c < c" in spliced
    assert "c < d" not in spliced
    assert spliced.count("fun main(") == 1
    assert spliced.count("fun bar(") == 1


def test_splice_function_appends_unknown_name():
    extra = "fun helper(a) {\n  return a;\n}"
    spliced = splice_function(SOURCE, "helper", extra)
    assert "fun helper(a)" in spliced
    assert "fun main(" in spliced


def test_splice_function_rejects_name_mismatch():
    from repro.serve import ServeError
    with pytest.raises(ServeError):
        splice_function(SOURCE, "main", "fun other() {\n}")


# ---------------------------------------------------------------------
# hot-engine counter regression (the satellite bug fix)


def test_hot_engine_counters_are_per_request():
    """Reusing one engine object across analyze() calls must not leak
    query records or double-count incremental session telemetry."""
    source = fuzz_source(3)
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        from repro.fusion import FusionConfig, GraphSolverConfig
        pdg = prepare_pdg(compile_source(source, LoweringConfig()))
        engine = FusionEngine(pdg, FusionConfig(
            solver=GraphSolverConfig(want_model=True, incremental=True)))

        cold_tel = Telemetry()
        cold = engine.analyze(NullDereferenceChecker(), store=store,
                              telemetry=cold_tel)
        assert cold.smt_queries > 0
        cold_records = len(engine.query_records)
        cold_solves = cold_tel.as_dict()["incremental"][
            "assumption_solves"]
        assert cold_solves > 0

        warm_tel = Telemetry()
        warm = engine.analyze(NullDereferenceChecker(), store=store,
                              telemetry=warm_tel)
        # Same engine object, fully warm store: everything replays.
        assert warm.smt_queries == 0
        assert warm.replayed_verdicts == warm.candidates
        assert warm.error_queries == 0
        # query_records is per-request, not cumulative.
        assert len(engine.query_records) == 0
        assert cold_records == cold.smt_queries
        # Incremental telemetry records this run's delta, not the hot
        # engine's lifetime totals (nothing solved → nothing recorded).
        assert warm_tel.as_dict()["incremental"][
            "assumption_solves"] == 0


def test_hot_session_counters_without_store():
    """Even with no store (every request re-solves), the second request
    reports its own numbers, not request 1 + request 2."""
    session = AnalysisSession(fuzz_source(4),
                              settings=EngineSettings())
    first = session.analyze("null-deref")
    second = session.analyze("null-deref")
    assert second.smt_queries == first.smt_queries
    assert len(session.engine.query_records) == second.smt_queries
